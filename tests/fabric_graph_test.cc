// FabricGraph model: builder validation, link numbering, materialize
// correspondence, the jellyfish builder's determinism/regularity, the shard
// planner's structural obstacle detection, and the experiment layer's loud
// --shards rejection on non-shardable fabrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "exp/traffic_experiment.h"
#include "net/fabric_graph.h"
#include "net/shard_plan.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace numfabric::net {
namespace {

TEST(FabricGraphTest, LinkNumberingAndAccessors) {
  FabricGraph graph;
  const int h0 = graph.add_host("h0");
  const int sw = graph.add_switch("sw0");
  const int h1 = graph.add_host("h1");
  const int c0 = graph.add_cable(h0, sw, 10e9, sim::micros(2));
  const int c1 = graph.add_cable(sw, h1, 10e9, sim::micros(3));

  EXPECT_EQ(graph.num_nodes(), 3);
  EXPECT_EQ(graph.num_hosts(), 2);
  EXPECT_EQ(graph.num_switches(), 1);
  EXPECT_EQ(graph.num_cables(), 2);
  EXPECT_EQ(graph.num_links(), 4);

  // Cable c -> links 2c (a->b) and 2c+1 (b->a); reverse flips the low bit.
  EXPECT_EQ(graph.link_src(2 * c0), h0);
  EXPECT_EQ(graph.link_dst(2 * c0), sw);
  EXPECT_EQ(graph.link_src(2 * c0 + 1), sw);
  EXPECT_EQ(graph.link_dst(2 * c0 + 1), h0);
  EXPECT_EQ(FabricGraph::reverse(2 * c1), 2 * c1 + 1);
  EXPECT_EQ(FabricGraph::reverse(2 * c1 + 1), 2 * c1);
  EXPECT_EQ(graph.link_delay(2 * c1), sim::micros(3));
  EXPECT_EQ(graph.link_rate_bps(3), 10e9);

  EXPECT_EQ(graph.host_uplink(h0), 0);
  EXPECT_EQ(graph.host_uplink(h1), 3);
  EXPECT_THROW(graph.host_uplink(sw), std::logic_error);

  // Outgoing links come back in cable-insertion order.
  const auto out = graph.outgoing(sw);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 2 * c0 + 1);
  EXPECT_EQ(out[1], 2 * c1);
}

TEST(FabricGraphTest, CableValidation) {
  FabricGraph graph;
  const int a = graph.add_host("a");
  const int b = graph.add_host("b");
  EXPECT_THROW(graph.add_cable(a, a, 10e9, 0), std::invalid_argument);
  EXPECT_THROW(graph.add_cable(a, 99, 10e9, 0), std::invalid_argument);
  EXPECT_THROW(graph.add_cable(a, b, 0, 0), std::invalid_argument);
  EXPECT_THROW(graph.add_cable(a, b, 10e9, -1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// materialize: the object topology is the graph, index for index.
// ---------------------------------------------------------------------------

TEST(FabricGraphTest, MaterializeMirrorsGraphIndexing) {
  const LeafSpineOptions options{.hosts_per_leaf = 2,
                                 .num_leaves = 3,
                                 .num_spines = 2};
  const FabricGraph graph = make_leaf_spine(options);
  sim::Simulator sim;
  Topology topo(sim);
  const MaterializedFabric mat = topo.materialize(graph, drop_tail_factory());

  ASSERT_EQ(mat.nodes.size(), static_cast<std::size_t>(graph.num_nodes()));
  ASSERT_EQ(mat.links.size(), static_cast<std::size_t>(graph.num_links()));
  EXPECT_EQ(mat.hosts.size(), static_cast<std::size_t>(graph.num_hosts()));
  EXPECT_EQ(mat.switches.size(),
            static_cast<std::size_t>(graph.num_switches()));

  // Node n materializes under the graph's name; link l connects the
  // materialized endpoints of graph link l and is also the dense position l
  // in Topology::links() (the property every path table relies on).
  for (int n = 0; n < graph.num_nodes(); ++n) {
    EXPECT_EQ(mat.nodes[static_cast<std::size_t>(n)]->name(),
              graph.nodes()[static_cast<std::size_t>(n)].name);
  }
  for (int l = 0; l < graph.num_links(); ++l) {
    const Link* link = mat.links[static_cast<std::size_t>(l)];
    EXPECT_EQ(link, topo.links()[static_cast<std::size_t>(l)].get());
    EXPECT_EQ(link->dst(),
              mat.nodes[static_cast<std::size_t>(graph.link_dst(l))]);
    // The twin is the reverse direction of the same cable, so its delivery
    // target is this link's graph source.
    EXPECT_EQ(link->twin(),
              mat.links[static_cast<std::size_t>(FabricGraph::reverse(l))]);
    EXPECT_EQ(link->twin()->dst(),
              mat.nodes[static_cast<std::size_t>(graph.link_src(l))]);
    EXPECT_EQ(link->rate_bps(), graph.link_rate_bps(l));
  }
}

TEST(FabricGraphTest, BuildLeafSpineViewsAgreeWithTheGraph) {
  sim::Simulator sim;
  Topology topo(sim);
  const LeafSpineOptions options{.hosts_per_leaf = 2,
                                 .num_leaves = 3,
                                 .num_spines = 2};
  const LeafSpine fabric =
      build_leaf_spine(topo, options, drop_tail_factory());

  EXPECT_EQ(fabric.hosts, fabric.mat.hosts);
  EXPECT_EQ(fabric.leaves.size(), 3u);
  EXPECT_EQ(fabric.spines.size(), 2u);
  EXPECT_EQ(fabric.core_links.size(), 2u * 3u * 2u);
  EXPECT_EQ(fabric.graph.num_hosts(), 6);
  // The legacy cross-leaf RTT formula and the graph-general base_rtt agree
  // on any multi-leaf leaf-spine.
  EXPECT_EQ(fabric.cross_leaf_rtt, leaf_spine_cross_rtt(options));
  EXPECT_EQ(base_rtt(fabric.graph), fabric.cross_leaf_rtt);
}

// ---------------------------------------------------------------------------
// Jellyfish builder.
// ---------------------------------------------------------------------------

std::vector<std::pair<int, int>> switch_edges(const FabricGraph& graph) {
  std::vector<std::pair<int, int>> edges;
  for (const GraphCable& cable : graph.cables()) {
    const auto& nodes = graph.nodes();
    if (nodes[static_cast<std::size_t>(cable.a)].kind ==
            GraphNodeKind::kSwitch &&
        nodes[static_cast<std::size_t>(cable.b)].kind ==
            GraphNodeKind::kSwitch) {
      edges.emplace_back(cable.a, cable.b);
    }
  }
  return edges;
}

TEST(JellyfishTest, DeterministicRegularAndRoundRobin) {
  const JellyfishOptions options{.switches = 12, .ports = 4, .hosts = 24,
                                 .seed = 7};
  const FabricGraph graph = make_jellyfish(options);
  EXPECT_EQ(graph.num_hosts(), 24);
  EXPECT_EQ(graph.num_switches(), 12);

  // Hosts round-robin across switches: host i hangs off switch i % 12.
  for (int h = 0; h < options.hosts; ++h) {
    int host_node = -1, count = 0;
    for (int n = 0; n < graph.num_nodes(); ++n) {
      if (graph.nodes()[static_cast<std::size_t>(n)].kind ==
          GraphNodeKind::kHost) {
        if (count == h) { host_node = n; break; }
        ++count;
      }
    }
    ASSERT_GE(host_node, 0);
    const int up = graph.host_uplink(host_node);
    EXPECT_EQ(graph.nodes()[static_cast<std::size_t>(graph.link_dst(up))].name,
              "sw" + std::to_string(h % options.switches));
  }

  // r-regular switch subgraph: every switch has exactly `ports` switch-switch
  // cables (12 * 4 is even, so a perfect regular wiring exists).
  std::vector<int> degree(static_cast<std::size_t>(graph.num_nodes()), 0);
  for (const auto& [a, b] : switch_edges(graph)) {
    ++degree[static_cast<std::size_t>(a)];
    ++degree[static_cast<std::size_t>(b)];
  }
  for (int n = 0; n < graph.num_nodes(); ++n) {
    if (graph.nodes()[static_cast<std::size_t>(n)].kind ==
        GraphNodeKind::kSwitch) {
      EXPECT_EQ(degree[static_cast<std::size_t>(n)], options.ports)
          << graph.nodes()[static_cast<std::size_t>(n)].name;
    }
  }

  // Identical options -> identical wiring (bit-for-bit); a different seed
  // rewires (vanishingly unlikely to collide on 12 switches x 4 ports).
  const FabricGraph again = make_jellyfish(options);
  ASSERT_EQ(switch_edges(graph), switch_edges(again));
  JellyfishOptions other = options;
  other.seed = 8;
  EXPECT_NE(switch_edges(graph), switch_edges(make_jellyfish(other)));
}

TEST(JellyfishTest, EverySwitchIsTierOne) {
  const FabricGraph graph = make_jellyfish({.switches = 6, .ports = 3,
                                            .hosts = 6, .seed = 1});
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind == GraphNodeKind::kSwitch) {
      EXPECT_EQ(node.tier, 1);
    }
  }
}

TEST(JellyfishTest, RejectsInfeasibleParameters) {
  EXPECT_THROW(make_jellyfish({.switches = 2, .ports = 2, .hosts = 4}),
               std::invalid_argument);
  EXPECT_THROW(make_jellyfish({.switches = 8, .ports = 1, .hosts = 4}),
               std::invalid_argument);
  EXPECT_THROW(make_jellyfish({.switches = 8, .ports = 8, .hosts = 4}),
               std::invalid_argument);
  EXPECT_THROW(make_jellyfish({.switches = 8, .ports = 2, .hosts = 1}),
               std::invalid_argument);
  EXPECT_THROW(
      make_jellyfish({.switches = 8, .ports = 2, .hosts = 4,
                      .host_rate_bps = 0}),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Shard planner: structural obstacle detection.
// ---------------------------------------------------------------------------

TEST(ShardObstacleTest, LeafSpineIsShardableJellyfishIsNot) {
  EXPECT_EQ(shard_partition_obstacle(make_leaf_spine(
                {.hosts_per_leaf = 2, .num_leaves = 2, .num_spines = 2})),
            "");

  const std::string obstacle = shard_partition_obstacle(
      make_jellyfish({.switches = 6, .ports = 3, .hosts = 6, .seed = 1}));
  EXPECT_NE(obstacle, "");
  // The explanation names the structural problem and the remedy.
  EXPECT_NE(obstacle.find("tier"), std::string::npos) << obstacle;
  EXPECT_NE(obstacle.find("--shards=1"), std::string::npos) << obstacle;
}

TEST(ShardObstacleTest, BuildShardPlanThrowsTheObstacle) {
  const FabricGraph graph =
      make_jellyfish({.switches = 6, .ports = 3, .hosts = 6, .seed = 1});
  sim::Simulator sim;
  Topology topo(sim);
  const MaterializedFabric mat = topo.materialize(graph, drop_tail_factory());
  EXPECT_THROW(build_shard_plan(graph, mat, 2), std::invalid_argument);
}

TEST(ShardObstacleTest, PlanLookaheadIsMinimumCoreDelay) {
  const LeafSpineOptions options{.hosts_per_leaf = 2,
                                 .num_leaves = 4,
                                 .num_spines = 2,
                                 .link_delay = sim::micros(2),
                                 .core_link_delay = sim::micros(5)};
  const FabricGraph graph = make_leaf_spine(options);
  sim::Simulator sim;
  Topology topo(sim);
  const MaterializedFabric mat = topo.materialize(graph, drop_tail_factory());
  const ShardPlan plan = build_shard_plan(graph, mat, 2);
  EXPECT_EQ(plan.shards, 2);
  EXPECT_EQ(plan.lookahead, sim::micros(5));
  // Leaf-major blocks: leaves 0,1 -> shard 0; leaves 2,3 -> shard 1.
  EXPECT_EQ(plan.shard_of(mat.switches[0]), 0);
  EXPECT_EQ(plan.shard_of(mat.switches[3]), 1);
  EXPECT_THROW(build_shard_plan(graph, mat, 5), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Experiment layer: --shards on a non-shardable fabric fails loudly.
// ---------------------------------------------------------------------------

TEST(ShardObstacleTest, TrafficExperimentRejectsShardsOnJellyfish) {
  exp::TrafficOptions options;
  options.jellyfish =
      JellyfishOptions{.switches = 6, .ports = 3, .hosts = 6, .seed = 1};
  options.pattern = exp::TrafficPattern::kPermutation;
  options.flow_size_bytes = 10'000;
  options.shards = 2;
  try {
    exp::run_traffic_experiment(options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--shards=2"), std::string::npos) << what;
    EXPECT_NE(what.find("not available"), std::string::npos) << what;
    EXPECT_NE(what.find("--shards=1"), std::string::npos) << what;
  }

  // shards=1 (serial) runs fine on the same fabric.
  options.shards = 1;
  const exp::TrafficResult result = exp::run_traffic_experiment(options);
  EXPECT_EQ(result.completed, result.flow_count);
}

}  // namespace
}  // namespace numfabric::net
