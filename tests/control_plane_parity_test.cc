// Parity between the batched transport::ControlPlane and the legacy
// object-per-link agents it replaced.
//
// Two layers:
//  * link-for-link unit parity — identical packet sequences driven through a
//    Link wired to a ControlPlane slot and a Link carrying the legacy agent,
//    asserting bit-identical prices/stamps across updates.  Covers the
//    backlog => utilization = 1 rule, residual reset between intervals, beta
//    smoothing, and RCP*'s per-tick (vs per-packet) R^-alpha stamp.
//  * whole-simulation parity — the same fixed-seed traffic experiment run
//    under FabricOptions::legacy_link_agents and under the batched control
//    plane, asserting identical packet-level results (FCTs, goodput, drops)
//    for all three price-carrying schemes.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "exp/traffic_experiment.h"
#include "net/drop_tail_queue.h"
#include "net/link.h"
#include "net/node.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "transport/control_plane.h"
#include "transport/dgd/dgd_link_agent.h"
#include "transport/fabric.h"
#include "transport/numfabric/xwi_link_agent.h"
#include "transport/rcp/rcp_link_agent.h"

namespace numfabric::transport {
namespace {

net::Packet data_packet(double residual, std::uint32_t size = 1500) {
  net::Packet p;
  p.flow = 1;
  p.type = net::PacketType::kData;
  p.size = size;
  p.normalized_residual = residual;
  return p;
}

/// Two identical one-link worlds: one wired through a batched ControlPlane,
/// one carrying the legacy agent.  `drive` injects the same traffic into
/// both; afterwards the per-update state must match bit-for-bit.
struct ParityRig {
  sim::Simulator batched_sim;
  net::Topology batched_topo{batched_sim};
  std::unique_ptr<ControlPlane> plane;
  net::Link* batched_link = nullptr;
  net::Host* batched_dst = nullptr;

  sim::Simulator legacy_sim;
  net::Topology legacy_topo{legacy_sim};
  net::Link* legacy_link = nullptr;
  net::Host* legacy_dst = nullptr;

  explicit ParityRig(const ControlPlane::Params& params,
                     double rate_bps = 10e9) {
    const auto build = [rate_bps](net::Topology& topo, net::Host** dst) {
      net::Host* a = topo.add_host("a");
      net::Host* b = topo.add_host("b");
      topo.connect(a, b, rate_bps, sim::micros(1), [] {
        return std::make_unique<net::DropTailQueue>(1'000'000);
      });
      *dst = b;
      return topo.links()[0].get();
    };
    batched_link = build(batched_topo, &batched_dst);
    legacy_link = build(legacy_topo, &legacy_dst);
    plane = ControlPlane::attach(batched_sim, params, batched_topo);

    switch (params.scheme) {
      case Scheme::kNumFabric: {
        const auto& c = params.numfabric;
        legacy_link->set_agent(std::make_unique<XwiLinkAgent>(
            legacy_sim, *legacy_link,
            XwiLinkAgent::Params{c.price_update_interval, c.eta, c.beta,
                                 c.initial_price}));
        break;
      }
      case Scheme::kDgd:
        legacy_link->set_agent(
            std::make_unique<DgdLinkAgent>(legacy_sim, *legacy_link, params.dgd));
        break;
      case Scheme::kRcpStar:
        legacy_link->set_agent(
            std::make_unique<RcpLinkAgent>(legacy_sim, *legacy_link, params.rcp));
        break;
      default:
        break;
    }
  }

  /// Runs `inject(link)` at `at` in both worlds.
  template <typename F>
  void drive(sim::TimeNs at, F inject) {
    batched_sim.schedule_at(at, [this, inject] { inject(*batched_link); });
    legacy_sim.schedule_at(at, [this, inject] { inject(*legacy_link); });
  }

  void run_until(sim::TimeNs until) {
    batched_sim.run_until(until);
    legacy_sim.run_until(until);
  }
};

// Params::threads parity: the chunked parallel sweep must be bit-identical
// to the serial slot-order sweep — per-slot updates touch only their own
// slot's state, so chunking changes wall time, never prices.  Two identical
// multi-link worlds, one swept serially and one on 4 threads, driven with
// the same packet sequences.
TEST(ControlPlaneParityTest, ThreadedSweepMatchesSerialBitwise) {
  struct World {
    sim::Simulator sim;
    net::Topology topo{sim};
    std::vector<net::Link*> links;
    std::unique_ptr<ControlPlane> plane;

    explicit World(int threads) {
      net::Host* a = topo.add_host("a");
      net::Host* b = topo.add_host("b");
      net::Host* c = topo.add_host("c");
      net::Host* d = topo.add_host("d");
      for (auto [src, dst] : {std::pair{a, b}, {b, c}, {c, d}}) {
        topo.connect(src, dst, 10e9, sim::micros(1), [] {
          return std::make_unique<net::DropTailQueue>(1'000'000);
        });
      }
      for (const auto& link : topo.links()) links.push_back(link.get());
      ControlPlane::Params params;
      params.scheme = Scheme::kNumFabric;
      params.threads = threads;
      plane = ControlPlane::attach(sim, params, topo);
    }
  };
  World serial(1), threaded(4);

  const double residuals[] = {0.5, -0.3, 0.1, 0.02, 0.4};
  for (int i = 0; i < 5; ++i) {
    const sim::TimeNs at = sim::micros(3 + 7 * i);
    const std::size_t link = static_cast<std::size_t>(i) % 3;
    const double r = residuals[i];
    serial.sim.schedule_at(at, [&serial, link, r] {
      serial.links[link]->send(data_packet(r));
    });
    threaded.sim.schedule_at(at, [&threaded, link, r] {
      threaded.links[link]->send(data_packet(r));
    });
  }

  for (int update = 1; update <= 5; ++update) {
    serial.sim.run_until(sim::micros(30 * update));
    threaded.sim.run_until(sim::micros(30 * update));
    for (std::size_t l = 0; l < 3; ++l) {
      EXPECT_EQ(serial.plane->price(l), threaded.plane->price(l))
          << "link " << l << " price diverged at update " << update;
    }
  }
  EXPECT_EQ(serial.plane->ticks(), threaded.plane->ticks());
}

TEST(ControlPlaneParityTest, XwiPriceMatchesLegacyAcrossUpdates) {
  ControlPlane::Params params;
  params.scheme = Scheme::kNumFabric;
  ParityRig rig(params);
  const auto* legacy =
      dynamic_cast<const XwiLinkAgent*>(rig.legacy_link->agent());
  ASSERT_NE(legacy, nullptr);

  // A mix of residual observations and serviced bytes across several
  // intervals, including an interval with no traffic at all (only the
  // under-utilization decay acts) and one with a negative min residual.
  const double residuals[] = {0.5, -0.3, 0.1, 0.02};
  for (int i = 0; i < 4; ++i) {
    rig.drive(sim::micros(3 + 7 * i), [r = residuals[i]](net::Link& link) {
      link.send(data_packet(r));
    });
  }
  // Interval [60, 90) stays idle; traffic resumes afterwards.
  rig.drive(sim::micros(95), [](net::Link& link) {
    link.send(data_packet(0.25, 60'000));
  });

  for (int update = 1; update <= 5; ++update) {
    rig.run_until(sim::micros(30 * update));
    EXPECT_EQ(rig.plane->price(0), legacy->price())
        << "xWI price diverged at update " << update;
  }
  EXPECT_EQ(rig.plane->ticks(), 5u);
  EXPECT_EQ(legacy->updates(), 5u);
}

TEST(ControlPlaneParityTest, XwiBacklogCountsAsFullUtilization) {
  ControlPlane::Params params;
  params.scheme = Scheme::kNumFabric;
  // A slow link (10 Mbps): a 60 KB burst takes 48 ms to drain, so the queue
  // is backlogged at every 30 us update — the backlog => utilization = 1
  // rule must kick in identically on both sides (byte counting alone would
  // report u < 1 in every interval).
  ParityRig rig(params, /*rate_bps=*/10e6);
  const auto* legacy =
      dynamic_cast<const XwiLinkAgent*>(rig.legacy_link->agent());
  rig.drive(sim::micros(1), [](net::Link& link) {
    for (int i = 0; i < 40; ++i) link.send(data_packet(0.05));
  });
  rig.run_until(sim::micros(300));
  ASSERT_FALSE(rig.batched_link->queue().empty());
  EXPECT_EQ(rig.plane->price(0), legacy->price());
  // With u == 1 throughout and min residual +0.05 once, the price must have
  // risen above its start.
  EXPECT_GT(rig.plane->price(0), params.numfabric.initial_price);
}

TEST(ControlPlaneParityTest, XwiStampsPriceAndPathLenOnDataOnly) {
  ControlPlane::Params params;
  params.scheme = Scheme::kNumFabric;
  ParityRig rig(params);

  // Capture what arrives at the destination: DATA packets must carry the
  // link price in path_price and one hop in path_len, ACKs must stay clean —
  // identically in both worlds.
  struct Seen {
    std::vector<double> prices;
    std::vector<std::uint32_t> lens;
  };
  Seen batched, legacy;
  const auto capture = [](Seen& seen) {
    return [&seen](net::Packet&& p) {
      seen.prices.push_back(p.path_price);
      seen.lens.push_back(p.path_len);
    };
  };
  rig.batched_dst->register_flow(1, capture(batched));
  rig.legacy_dst->register_flow(1, capture(legacy));

  // One DATA packet before the first update (stamped with the initial
  // price), one after (stamped with the updated price), and one ACK.
  rig.drive(sim::micros(5), [](net::Link& link) {
    link.send(data_packet(0.1));
  });
  rig.drive(sim::micros(40), [](net::Link& link) {
    link.send(data_packet(0.1));
    net::Packet ack;
    ack.flow = 1;
    ack.type = net::PacketType::kAck;
    ack.size = 40;
    link.send(std::move(ack));
  });
  rig.run_until(sim::micros(60));

  ASSERT_EQ(batched.prices.size(), 3u);
  ASSERT_EQ(legacy.prices.size(), 3u);
  EXPECT_EQ(batched.prices, legacy.prices);
  EXPECT_EQ(batched.lens, legacy.lens);
  EXPECT_EQ(batched.prices[0], params.numfabric.initial_price);
  EXPECT_EQ(batched.lens[0], 1u);
  EXPECT_EQ(batched.prices[2], 0.0);  // the ACK is not stamped
  EXPECT_EQ(batched.lens[2], 0u);
}

TEST(ControlPlaneParityTest, DgdPriceMatchesLegacyAcrossUpdates) {
  ControlPlane::Params params;
  params.scheme = Scheme::kDgd;
  ParityRig rig(params);
  const auto* legacy =
      dynamic_cast<const DgdLinkAgent*>(rig.legacy_link->agent());
  ASSERT_NE(legacy, nullptr);

  for (int i = 0; i < 6; ++i) {
    rig.drive(sim::micros(2 + 5 * i), [](net::Link& link) {
      link.send(data_packet(0.0, 4000));
    });
  }
  for (int update = 1; update <= 4; ++update) {
    rig.run_until(sim::micros(16 * update));
    EXPECT_EQ(rig.plane->price(0), legacy->price())
        << "DGD price diverged at update " << update;
  }
}

TEST(ControlPlaneParityTest, RcpFairShareAndStampMatchLegacy) {
  ControlPlane::Params params;
  params.scheme = Scheme::kRcpStar;
  ParityRig rig(params);
  const auto* legacy =
      dynamic_cast<const RcpLinkAgent*>(rig.legacy_link->agent());
  ASSERT_NE(legacy, nullptr);

  // Start equal: both advertise the link capacity.
  EXPECT_EQ(rig.plane->fair_share_bps(0), legacy->fair_share_bps());

  // The per-packet stamp: legacy computes R^-alpha per dequeue; the control
  // plane precomputes it per tick.  Same R => bit-identical path_feedback on
  // every delivered packet.
  std::vector<double> batched_feedback, legacy_feedback;
  rig.batched_dst->register_flow(1, [&](net::Packet&& p) {
    batched_feedback.push_back(p.path_feedback);
  });
  rig.legacy_dst->register_flow(1, [&](net::Packet&& p) {
    legacy_feedback.push_back(p.path_feedback);
  });

  rig.drive(sim::micros(3), [](net::Link& link) {
    for (int i = 0; i < 8; ++i) link.send(data_packet(0.0));
  });
  // Packets sent across several updates so stamps cover changing R values.
  rig.drive(sim::micros(50), [](net::Link& link) {
    link.send(data_packet(0.0));
  });
  for (int update = 1; update <= 6; ++update) {
    rig.run_until(sim::micros(16 * update));
    EXPECT_EQ(rig.plane->fair_share_bps(0), legacy->fair_share_bps())
        << "RCP* fair share diverged at update " << update;
  }
  ASSERT_EQ(batched_feedback.size(), 9u);
  EXPECT_EQ(batched_feedback, legacy_feedback);
}

// ---------------------------------------------------------------------------
// Whole-simulation parity: fixed-seed incast under legacy agents vs the
// batched control plane must produce identical packet-level results.
// ---------------------------------------------------------------------------

exp::TrafficResult run_incast(Scheme scheme, bool legacy) {
  exp::TrafficOptions options;
  options.scheme = scheme;
  options.fabric.scheme = scheme;
  options.fabric.legacy_link_agents = legacy;
  options.topology.hosts_per_leaf = 2;
  options.topology.num_leaves = 2;
  options.topology.num_spines = 1;
  options.pattern = exp::TrafficPattern::kIncast;
  options.incast_fanin = 3;
  options.flow_size_bytes = 32'000;
  options.seed = 1;
  return run_traffic_experiment(options);
}

TEST(ControlPlaneParityTest, FixedSeedIncastMatchesLegacyForAllSchemes) {
  for (Scheme scheme : {Scheme::kNumFabric, Scheme::kDgd, Scheme::kRcpStar}) {
    const exp::TrafficResult legacy = run_incast(scheme, /*legacy=*/true);
    const exp::TrafficResult batched = run_incast(scheme, /*legacy=*/false);
    EXPECT_EQ(legacy.flow_count, batched.flow_count);
    EXPECT_EQ(legacy.completed, batched.completed);
    EXPECT_EQ(legacy.incomplete, batched.incomplete);
    EXPECT_EQ(legacy.queue_drops, batched.queue_drops);
    ASSERT_EQ(legacy.fct_us.size(), batched.fct_us.size());
    for (std::size_t i = 0; i < legacy.fct_us.size(); ++i) {
      EXPECT_EQ(legacy.fct_us[i], batched.fct_us[i])
          << scheme_name(scheme) << " flow " << i
          << ": FCT diverged between legacy agents and the control plane";
    }
    // The whole point of the batch: strictly fewer simulator events for the
    // same physics (N timer events per interval collapse into one).
    EXPECT_LT(batched.sim_events, legacy.sim_events) << scheme_name(scheme);
  }
}

}  // namespace
}  // namespace numfabric::transport
