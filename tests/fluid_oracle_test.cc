// Event-driven fluid FCT oracle tests.
#include <gtest/gtest.h>

#include "num/csr_problem.h"
#include "num/fluid_fct_oracle.h"
#include "num/num_solver.h"
#include "num/utility.h"

namespace numfabric::num {
namespace {

TEST(FluidFctOracleTest, LoneFlowRunsAtCapacity) {
  AlphaFairUtility u(1.0);
  std::vector<FluidFlow> flows(1);
  flows[0].arrival_seconds = 0;
  flows[0].size_bytes = 1e6;  // 8 Mbit
  flows[0].links = {0};
  flows[0].utility = &u;
  const auto result = fluid_fct_oracle(flows, {10'000.0});  // 10 Gbps
  EXPECT_NEAR(result.fct_seconds[0], 8e6 / 10e9, 1e-9);
  EXPECT_NEAR(result.ideal_rate[0], 10'000.0, 1e-6);
}

TEST(FluidFctOracleTest, TwoSimultaneousFlowsShare) {
  AlphaFairUtility u(1.0);
  std::vector<FluidFlow> flows(2);
  for (auto& f : flows) {
    f.arrival_seconds = 0;
    f.size_bytes = 1e6;
    f.links = {0};
    f.utility = &u;
  }
  const auto result = fluid_fct_oracle(flows, {10'000.0});
  // Both share 5 Gbps until they finish together: FCT = 8Mb / 5Gbps.
  EXPECT_NEAR(result.fct_seconds[0], 8e6 / 5e9, 1e-9);
  EXPECT_NEAR(result.fct_seconds[1], 8e6 / 5e9, 1e-9);
}

TEST(FluidFctOracleTest, LateArrivalSlowsFirstFlow) {
  AlphaFairUtility u(1.0);
  std::vector<FluidFlow> flows(2);
  flows[0] = {0.0, 2e6, {0}, &u};
  flows[1] = {0.8e-3, 2e6, {0}, &u};  // arrives when flow 0 is half done
  const auto result = fluid_fct_oracle(flows, {10'000.0});
  // Flow 0: 0.8 ms alone (8 Mb at 10G) + shares afterwards.
  EXPECT_GT(result.fct_seconds[0], 1.6e-3 * 0.99);
  EXPECT_GT(result.fct_seconds[1], result.fct_seconds[0] - 0.8e-3);
  // Work conservation: total bytes delivered / total time ~ capacity while
  // both active.
  EXPECT_LT(result.fct_seconds[0], 2.5e-3);
}

TEST(FluidFctOracleTest, ResultsInInputOrderNotArrivalOrder) {
  AlphaFairUtility u(1.0);
  std::vector<FluidFlow> flows(2);
  flows[0] = {5e-3, 1e6, {0}, &u};  // arrives later but is index 0
  flows[1] = {0.0, 1e6, {0}, &u};
  const auto result = fluid_fct_oracle(flows, {10'000.0});
  EXPECT_NEAR(result.fct_seconds[0], 0.8e-3, 1e-6);
  EXPECT_NEAR(result.fct_seconds[1], 0.8e-3, 1e-6);
}

TEST(FluidFctOracleTest, MultiLinkAllocation) {
  // Parking lot: the long flow gets C/3 under proportional fairness while
  // both shorts are active.
  AlphaFairUtility u(1.0);
  std::vector<FluidFlow> flows(3);
  flows[0] = {0.0, 10e6, {0, 1}, &u};
  flows[1] = {0.0, 10e6, {0}, &u};
  flows[2] = {0.0, 10e6, {1}, &u};
  const auto result = fluid_fct_oracle(flows, {9'000.0, 9'000.0});
  // Shorts run at 6 Gbps, the long flow at 3 Gbps initially; shorts finish
  // first, then the long flow speeds up.
  EXPECT_LT(result.fct_seconds[1], result.fct_seconds[0]);
  EXPECT_LT(result.fct_seconds[2], result.fct_seconds[0]);
}

TEST(FluidFctOracleTest, WarmStartPreservesPhysicsAndSavesSweeps) {
  // A staggered arrival/completion sequence over two links exercising many
  // re-solves with slowly-changing active sets — the shape the warm start
  // (threading each solution's prices into the next solve) exists for.
  AlphaFairUtility u(1.0);
  std::vector<FluidFlow> flows(6);
  const std::vector<double> capacities = {9'000.0, 9'000.0};
  flows[0] = {0.0, 4e6, {0, 1}, &u};
  flows[1] = {0.0, 2e6, {0}, &u};
  flows[2] = {0.3e-3, 2e6, {1}, &u};
  flows[3] = {0.9e-3, 3e6, {0}, &u};
  flows[4] = {1.4e-3, 1e6, {0, 1}, &u};
  flows[5] = {2.5e-3, 2e6, {1}, &u};
  const auto warm = fluid_fct_oracle(flows, capacities);

  // Physics unchanged by warm starting: flow 1 (short, one link) beats
  // flow 0 (longer, two links), everyone finishes, and the whole run is
  // deterministic.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_GT(warm.fct_seconds[i], 0.0);
  }
  EXPECT_LT(warm.fct_seconds[1], warm.fct_seconds[0]);
  const auto again = fluid_fct_oracle(flows, capacities);
  EXPECT_EQ(warm.fct_seconds, again.fct_seconds);
  EXPECT_EQ(warm.sweeps, again.sweeps);

  // The savings claim: re-solves start at the previous optimum, so the
  // whole event sequence must cost well under `solves` cold solves.  The
  // cold cost of this problem family is measured directly.
  NumProblem cold_problem;
  cold_problem.capacities = capacities;
  for (const FluidFlow& f : flows) {
    cold_problem.utilities.push_back(f.utility);
    cold_problem.flow_links.push_back(f.links);
  }
  const CsrProblem cold_csr = CsrProblem::compile(cold_problem);
  NumWorkspace cold_workspace;
  const int cold_sweeps = solve(cold_csr, cold_workspace, {}).sweeps;
  ASSERT_GT(warm.solves, 6);  // arrivals + completions both trigger solves
  EXPECT_LT(warm.sweeps, static_cast<std::int64_t>(warm.solves) * cold_sweeps)
      << "warm-started re-solves should cost less than cold restarts "
      << "(solves=" << warm.solves << ", cold sweeps each=" << cold_sweeps
      << ")";
}

TEST(FluidFctOracleTest, RejectsMalformedFlows) {
  AlphaFairUtility u(1.0);
  std::vector<FluidFlow> flows(1);
  flows[0] = {0.0, 0.0, {0}, &u};
  EXPECT_THROW(fluid_fct_oracle(flows, {10.0}), std::invalid_argument);
  flows[0] = {0.0, 1e6, {}, &u};
  EXPECT_THROW(fluid_fct_oracle(flows, {10.0}), std::invalid_argument);
  flows[0] = {0.0, 1e6, {0}, nullptr};
  EXPECT_THROW(fluid_fct_oracle(flows, {10.0}), std::invalid_argument);
}

}  // namespace
}  // namespace numfabric::num
