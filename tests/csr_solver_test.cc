// Properties of the compiled CSR solver path (num::CsrProblem +
// num::NumWorkspace + num::solve):
//
//  * serial vs parallel(2/4/8) wave execution is BITWISE identical — the
//    determinism contract behind --solver-threads (randomized problems
//    across alphas, cold and warm);
//  * solutions satisfy the KKT system to the solver tolerance;
//  * pow(x, -1.0) == 1.0 / x bitwise — the identity the alpha == 1
//    reciprocal fast path rests on;
//  * warm re-solves against a reused workspace are allocation-free
//    (measured by the allocs_solver_workspace substrate counter);
//  * a set_active row patch solves exactly the freshly compiled subproblem;
//  * compacted active rows match a full-row scan value-for-value, and
//    randomized activation patterns solve bit-identically to recompiled
//    subproblems across warm/cold x serial/parallel(2/4/8) (tier 1);
//  * incremental (worklist) re-solves satisfy KKT to the same tolerance,
//    stay within a tolerance band of full solves, are thread-count
//    invariant, and fall back to full solves when the workspace binding is
//    stale (tier 2);
//  * kkt_residual's flow-major load pass is bitwise the legacy nested scan;
//  * the deprecated solve_num wrapper reproduces the new API bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "num/csr_problem.h"
#include "num/num_solver.h"
#include "num/utility.h"
#include "sim/random.h"
#include "sim/substrate_stats.h"

namespace numfabric::num {
namespace {

/// A randomized NUM instance that owns its utility objects (CsrProblem
/// borrows them).
struct RandomInstance {
  std::vector<std::unique_ptr<AlphaFairUtility>> utilities;
  NumProblem problem;
};

RandomInstance make_random(double alpha, int flows, int links,
                           std::uint64_t seed) {
  RandomInstance instance;
  sim::Rng rng(seed);
  instance.problem.capacities.resize(static_cast<std::size_t>(links));
  for (auto& c : instance.problem.capacities) c = rng.uniform(10.0, 100.0);
  for (int i = 0; i < flows; ++i) {
    instance.utilities.push_back(
        std::make_unique<AlphaFairUtility>(alpha, rng.uniform(0.5, 2.0)));
    instance.problem.utilities.push_back(instance.utilities.back().get());
    std::vector<int> path;
    const int hops = static_cast<int>(rng.uniform_int(1, 3));
    for (int h = 0; h < hops; ++h) {
      const int link =
          static_cast<int>(rng.index(static_cast<std::size_t>(links)));
      if (std::find(path.begin(), path.end(), link) == path.end()) {
        path.push_back(link);
      }
    }
    instance.problem.flow_links.push_back(path);
  }
  return instance;
}

/// Bitwise equality of two double sequences (EXPECT_EQ on doubles would
/// conflate -0.0 with 0.0 and choke on NaN).
::testing::AssertionResult bitwise_equal(std::span<const double> a,
                                         std::span<const double> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "index " << i << ": " << a[i] << " vs " << b[i]
             << " (bit patterns differ)";
    }
  }
  return ::testing::AssertionSuccess();
}

struct CsrCase {
  double alpha;
  int flows;
  int links;
  std::uint64_t seed;
};

class CsrSolverRandom : public ::testing::TestWithParam<CsrCase> {};

// The --solver-threads contract: for every thread count, prices AND rates
// are bit-identical to the serial reference sweep — cold, and warm after a
// set_active row patch.
TEST_P(CsrSolverRandom, ParallelIsBitIdenticalToSerial) {
  const CsrCase param = GetParam();
  const RandomInstance instance =
      make_random(param.alpha, param.flows, param.links, param.seed);

  CsrProblem serial_csr = CsrProblem::compile(instance.problem);
  NumWorkspace serial_ws;
  const SolveStats serial = solve(serial_csr, serial_ws);
  ASSERT_TRUE(serial.converged);

  for (const int threads : {2, 4, 8}) {
    CsrProblem csr = CsrProblem::compile(instance.problem);
    NumWorkspace ws;
    NumSolverOptions options;
    options.policy = ExecutionPolicy::parallel(threads);
    const SolveStats stats = solve(csr, ws, options);
    EXPECT_EQ(stats.sweeps, serial.sweeps) << "threads=" << threads;
    EXPECT_TRUE(bitwise_equal(ws.prices(), serial_ws.prices()))
        << "prices diverged at threads=" << threads;
    EXPECT_TRUE(bitwise_equal(ws.rates(), serial_ws.rates()))
        << "rates diverged at threads=" << threads;

    // Warm re-solve after a row patch: drop one flow on both sides, re-solve
    // from the previous prices, and the wave execution must still track the
    // serial sweep bit-for-bit.
    const std::size_t drop = static_cast<std::size_t>(param.seed) %
                             static_cast<std::size_t>(param.flows);
    serial_csr.set_active(drop, false);
    csr.set_active(drop, false);
    const SolveStats warm_serial = solve(serial_csr, serial_ws);
    const SolveStats warm_parallel = solve(csr, ws, options);
    EXPECT_EQ(warm_parallel.sweeps, warm_serial.sweeps);
    EXPECT_TRUE(bitwise_equal(ws.prices(), serial_ws.prices()))
        << "warm prices diverged at threads=" << threads;
    EXPECT_TRUE(bitwise_equal(ws.rates(), serial_ws.rates()))
        << "warm rates diverged at threads=" << threads;
    serial_csr.set_active(drop, true);
    serial_ws.reset();
    const SolveStats again = solve(serial_csr, serial_ws);
    ASSERT_TRUE(again.converged);
  }
}

// The CSR path must still be a correct NUM solver: KKT residual near zero.
TEST_P(CsrSolverRandom, SatisfiesKkt) {
  const CsrCase param = GetParam();
  const RandomInstance instance =
      make_random(param.alpha, param.flows, param.links, param.seed);
  const CsrProblem csr = CsrProblem::compile(instance.problem);
  NumWorkspace ws;
  const SolveStats stats = solve(csr, ws);
  ASSERT_TRUE(stats.converged);
  EXPECT_LT(stats.max_violation, 1e-6);
  const std::vector<double> rates(ws.rates().begin(), ws.rates().end());
  const std::vector<double> prices(ws.prices().begin(), ws.prices().end());
  EXPECT_LT(kkt_residual(instance.problem, rates, prices), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, CsrSolverRandom,
    ::testing::Values(CsrCase{0.5, 10, 4, 11}, CsrCase{1.0, 10, 4, 12},
                      CsrCase{2.0, 10, 4, 13}, CsrCase{1.0, 50, 10, 14},
                      CsrCase{4.0, 30, 8, 15}, CsrCase{0.125, 20, 6, 16},
                      CsrCase{1.0, 200, 30, 17}));

// Tier-1 structural invariant behind the compacted rows: after any sequence
// of set_active toggles, every link's compacted row holds exactly the values
// a full-row scan that skips inactives would visit, in the same order.  This
// is the literal "identical values in identical order" claim the solver's
// bit-exactness rests on.
TEST_P(CsrSolverRandom, CompactedRowsMatchFullRowScan) {
  const CsrCase param = GetParam();
  const RandomInstance instance =
      make_random(param.alpha, param.flows, param.links, param.seed);
  CsrProblem csr = CsrProblem::compile(instance.problem);

  sim::Rng rng(param.seed * 1000 + 7);
  const auto check_rows = [&csr]() {
    std::size_t active_total = 0;
    for (std::size_t l = 0; l < csr.num_links(); ++l) {
      std::vector<std::int32_t> reference;
      for (const std::int32_t i : csr.link_flows(l)) {
        if (csr.active(static_cast<std::size_t>(i))) reference.push_back(i);
      }
      const auto compacted = csr.link_active_flows(l);
      ASSERT_EQ(compacted.size(), reference.size()) << "link " << l;
      for (std::size_t k = 0; k < reference.size(); ++k) {
        ASSERT_EQ(compacted[k], reference[k]) << "link " << l << " slot " << k;
      }
    }
    for (std::size_t i = 0; i < csr.num_flows(); ++i) {
      if (csr.active(i)) ++active_total;
    }
    ASSERT_EQ(csr.active_count(), active_total);
  };

  check_rows();
  for (int step = 0; step < 200; ++step) {
    const auto flow = rng.index(csr.num_flows());
    csr.set_active(flow, !csr.active(flow));
  }
  check_rows();
  csr.deactivate_all();
  check_rows();
  for (int step = 0; step < 100; ++step) {
    const auto flow = rng.index(csr.num_flows());
    csr.set_active(flow, !csr.active(flow));
  }
  check_rows();
}

// Randomized-pattern bitwise parity (the tier-1 acceptance property): after
// a random activation pattern, solving the patched problem — cold and warm,
// serial and parallel(2/4/8) — is bit-identical to solving the freshly
// compiled subproblem that contains only the active rows, i.e. the
// compaction is invisible to every load sum, path_price update and
// rate/violation loop.
TEST_P(CsrSolverRandom, RandomActivePatternMatchesRecompiledBitwise) {
  const CsrCase param = GetParam();
  const RandomInstance instance =
      make_random(param.alpha, param.flows, param.links, param.seed);
  sim::Rng rng(param.seed * 7919 + 3);

  // Random pattern via a toggle walk (exercises insert AND remove, including
  // re-activation), keeping at least one flow active.
  CsrProblem patched = CsrProblem::compile(instance.problem);
  for (int step = 0; step < 3 * param.flows; ++step) {
    const auto flow = rng.index(patched.num_flows());
    patched.set_active(flow, !patched.active(flow));
  }
  if (patched.active_count() == 0) patched.set_active(0, true);

  NumProblem sub;
  sub.capacities = instance.problem.capacities;
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < patched.num_flows(); ++i) {
    if (!patched.active(i)) continue;
    kept.push_back(i);
    sub.utilities.push_back(instance.problem.utilities[i]);
    sub.flow_links.push_back(instance.problem.flow_links[i]);
  }
  const CsrProblem sub_csr = CsrProblem::compile(sub);

  for (const int threads : {1, 2, 4, 8}) {
    NumSolverOptions options;
    options.policy = threads == 1 ? ExecutionPolicy::serial()
                                  : ExecutionPolicy::parallel(threads);
    // Cold.
    NumWorkspace patched_ws;
    NumWorkspace sub_ws;
    const SolveStats patched_cold = solve(patched, patched_ws, options);
    const SolveStats sub_cold = solve(sub_csr, sub_ws, options);
    EXPECT_EQ(patched_cold.sweeps, sub_cold.sweeps) << "threads=" << threads;
    EXPECT_TRUE(bitwise_equal(patched_ws.prices(), sub_ws.prices()))
        << "cold prices diverged at threads=" << threads;
    for (std::size_t k = 0; k < kept.size(); ++k) {
      const double a = patched_ws.rates()[kept[k]];
      const double b = sub_ws.rates()[k];
      ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
          << "cold rate of flow " << kept[k] << " at threads=" << threads;
    }
    // Warm: drop one more active flow on both sides and re-solve from the
    // previous prices.
    const std::size_t drop = kept[rng.index(kept.size())];
    if (kept.size() < 2) continue;
    patched.set_active(drop, false);
    NumProblem sub2;
    sub2.capacities = sub.capacities;
    std::vector<std::size_t> kept2;
    for (std::size_t k = 0; k < kept.size(); ++k) {
      if (kept[k] == drop) continue;
      kept2.push_back(kept[k]);
      sub2.utilities.push_back(sub.utilities[k]);
      sub2.flow_links.push_back(sub.flow_links[k]);
    }
    const CsrProblem sub2_csr = CsrProblem::compile(sub2);
    NumWorkspace sub2_ws;
    NumSolverOptions warm_options = options;
    warm_options.initial_prices.assign(sub_ws.prices().begin(),
                                       sub_ws.prices().end());
    const SolveStats patched_warm = solve(patched, patched_ws, options);
    const SolveStats sub_warm = solve(sub2_csr, sub2_ws, warm_options);
    EXPECT_EQ(patched_warm.sweeps, sub_warm.sweeps) << "threads=" << threads;
    EXPECT_TRUE(bitwise_equal(patched_ws.prices(), sub2_ws.prices()))
        << "warm prices diverged at threads=" << threads;
    for (std::size_t k = 0; k < kept2.size(); ++k) {
      const double a = patched_ws.rates()[kept2[k]];
      const double b = sub2_ws.rates()[k];
      ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
          << "warm rate of flow " << kept2[k] << " at threads=" << threads;
    }
    patched.set_active(drop, true);  // restore for the next thread count
  }
}

// Tier-2 property: incremental re-solves reach the same KKT tolerance as
// full re-solves on every churn step, and their rates stay within a
// solver-tolerance band of the full solution.  Also pins the fallback
// contract on the cold solve (no warm workspace -> full solve, bitwise
// identical, zero relaxations).
TEST_P(CsrSolverRandom, IncrementalChurnSatisfiesKktAndMatchesFull) {
  const CsrCase param = GetParam();
  const RandomInstance instance =
      make_random(param.alpha, param.flows, param.links, param.seed);
  CsrProblem csr_inc = CsrProblem::compile(instance.problem);
  CsrProblem csr_full = CsrProblem::compile(instance.problem);
  NumWorkspace ws_inc;
  NumWorkspace ws_full;
  NumSolverOptions opt_inc;
  opt_inc.incremental = true;
  const NumSolverOptions opt_full;

  // Cold: the incremental option must fall back to the full path bitwise.
  const SolveStats cold_inc = solve(csr_inc, ws_inc, opt_inc);
  const SolveStats cold_full = solve(csr_full, ws_full, opt_full);
  ASSERT_TRUE(cold_inc.converged);
  EXPECT_EQ(cold_inc.relaxations, 0);
  EXPECT_TRUE(bitwise_equal(ws_inc.prices(), ws_full.prices()));
  EXPECT_TRUE(bitwise_equal(ws_inc.rates(), ws_full.rates()));
  EXPECT_EQ(cold_inc.sweeps, cold_full.sweeps);

  sim::Rng rng(param.seed * 31 + 5);
  std::int64_t total_relaxations = 0;
  for (int step = 0; step < 8; ++step) {
    for (int t = 0; t < 3; ++t) {
      const auto flow = rng.index(csr_inc.num_flows());
      const bool next = !csr_inc.active(flow);
      csr_inc.set_active(flow, next);
      csr_full.set_active(flow, next);
    }
    if (csr_inc.active_count() == 0) {
      csr_inc.set_active(0, true);
      csr_full.set_active(0, true);
    }
    const SolveStats inc = solve(csr_inc, ws_inc, opt_inc);
    const SolveStats full = solve(csr_full, ws_full, opt_full);
    ASSERT_TRUE(inc.converged) << "step " << step;
    ASSERT_TRUE(full.converged) << "step " << step;
    total_relaxations += inc.relaxations;
    EXPECT_EQ(full.relaxations, 0);
    // Same convergence contract as the full path.
    EXPECT_LT(kkt_residual(csr_inc, ws_inc.rates(), ws_inc.prices()), 1e-5)
        << "step " << step;
    EXPECT_LT(inc.max_violation, 1e-5) << "step " << step;
    // Not bit-identical to the full solve, but within a tolerance band.
    for (const std::int32_t f : csr_inc.active_flows()) {
      const auto i = static_cast<std::size_t>(f);
      const double a = ws_inc.rates()[i];
      const double b = ws_full.rates()[i];
      EXPECT_LE(std::abs(a - b), 1e-5 * std::max(1.0, std::abs(b)))
          << "step " << step << " flow " << i;
    }
  }
  // Churn-shaped epochs must actually take the worklist path.
  EXPECT_GT(total_relaxations, 0);
}

// Tier-2 determinism: the incremental path is serial (worklist) plus
// wave-deterministic verification sweeps, so its output cannot depend on the
// solver thread count.
TEST_P(CsrSolverRandom, IncrementalIsThreadCountInvariant) {
  const CsrCase param = GetParam();
  const RandomInstance instance =
      make_random(param.alpha, param.flows, param.links, param.seed);
  CsrProblem serial_csr = CsrProblem::compile(instance.problem);
  CsrProblem parallel_csr = CsrProblem::compile(instance.problem);
  NumWorkspace serial_ws;
  NumWorkspace parallel_ws;
  NumSolverOptions serial_options;
  serial_options.incremental = true;
  NumSolverOptions parallel_options = serial_options;
  parallel_options.policy = ExecutionPolicy::parallel(4);

  solve(serial_csr, serial_ws, serial_options);
  solve(parallel_csr, parallel_ws, parallel_options);
  sim::Rng rng(param.seed * 131 + 1);
  for (int step = 0; step < 6; ++step) {
    for (int t = 0; t < 2; ++t) {
      const auto flow = rng.index(serial_csr.num_flows());
      const bool next = !serial_csr.active(flow);
      serial_csr.set_active(flow, next);
      parallel_csr.set_active(flow, next);
    }
    if (serial_csr.active_count() == 0) {
      serial_csr.set_active(0, true);
      parallel_csr.set_active(0, true);
    }
    const SolveStats serial_stats = solve(serial_csr, serial_ws, serial_options);
    const SolveStats parallel_stats =
        solve(parallel_csr, parallel_ws, parallel_options);
    EXPECT_EQ(serial_stats.relaxations, parallel_stats.relaxations)
        << "step " << step;
    EXPECT_EQ(serial_stats.sweeps, parallel_stats.sweeps) << "step " << step;
    EXPECT_TRUE(bitwise_equal(serial_ws.prices(), parallel_ws.prices()))
        << "incremental prices depend on thread count at step " << step;
    EXPECT_TRUE(bitwise_equal(serial_ws.rates(), parallel_ws.rates()))
        << "incremental rates depend on thread count at step " << step;
  }
}

// A workspace whose binding is stale (another workspace solved the problem
// since, consuming the dirty set) must fall back to a full solve rather than
// patch from prices that never saw the missed churn.
TEST(CsrSolverTest, IncrementalFallsBackWhenWorkspaceIsStale) {
  const RandomInstance instance = make_random(1.0, 40, 8, 21);
  CsrProblem csr = CsrProblem::compile(instance.problem);
  NumWorkspace ws_a;
  NumWorkspace ws_b;
  NumSolverOptions options;
  options.incremental = true;

  ASSERT_TRUE(solve(csr, ws_a, options).converged);  // cold, binds ws_a
  csr.set_active(3, false);
  const SolveStats warm_a = solve(csr, ws_a, options);
  ASSERT_TRUE(warm_a.converged);
  EXPECT_GT(warm_a.relaxations, 0) << "warm bound workspace should go incremental";

  csr.set_active(5, false);
  ASSERT_TRUE(solve(csr, ws_b, options).converged);  // cold ws_b consumes dirty set

  csr.set_active(3, true);
  // ws_a's epoch is stale: ws_b's solve advanced it.  The only safe move is a
  // full solve — observable as zero relaxations — and the result must still
  // satisfy KKT.
  const SolveStats stale = solve(csr, ws_a, options);
  ASSERT_TRUE(stale.converged);
  EXPECT_EQ(stale.relaxations, 0);
  EXPECT_LT(kkt_residual(csr, ws_a.rates(), ws_a.prices()), 1e-5);
}

// Satellite: the O(nnz) flow-major link-load pass in kkt_residual must be
// bit-identical to the legacy O(links x flows x path) nested rescan it
// replaced (per-link sums add the same rates in the same increasing-flow-id
// order).
TEST(CsrSolverTest, KktResidualMatchesLegacyNestedScanBitwise) {
  const auto legacy_kkt = [](const NumProblem& problem,
                             const std::vector<double>& rates,
                             const std::vector<double>& prices) {
    double residual = 0.0;
    for (std::size_t i = 0; i < problem.utilities.size(); ++i) {
      double path_price = 0.0;
      for (int l : problem.flow_links[i]) {
        path_price += prices[static_cast<std::size_t>(l)];
      }
      const double marginal = problem.utilities[i]->marginal(rates[i]);
      residual = std::max(residual, std::abs(marginal - path_price) /
                                        std::max(marginal, kMinPrice));
    }
    for (std::size_t l = 0; l < problem.capacities.size(); ++l) {
      double load = 0.0;
      for (std::size_t i = 0; i < problem.flow_links.size(); ++i) {
        for (int k : problem.flow_links[i]) {
          if (static_cast<std::size_t>(k) == l) load += rates[i];
        }
      }
      const double slack = problem.capacities[l] - load;
      residual = std::max(residual, prices[l] * std::max(slack, 0.0) /
                                        problem.capacities[l]);
      residual = std::max(residual, -slack / problem.capacities[l]);
    }
    return residual;
  };

  for (const std::uint64_t seed : {41ull, 42ull, 43ull}) {
    const RandomInstance instance = make_random(1.0, 60, 12, seed);
    const CsrProblem csr = CsrProblem::compile(instance.problem);
    NumWorkspace ws;
    ASSERT_TRUE(solve(csr, ws).converged);
    const std::vector<double> rates(ws.rates().begin(), ws.rates().end());
    const std::vector<double> prices(ws.prices().begin(), ws.prices().end());
    const double fast = kkt_residual(instance.problem, rates, prices);
    const double slow = legacy_kkt(instance.problem, rates, prices);
    ASSERT_EQ(std::memcmp(&fast, &slow, sizeof(double)), 0)
        << "seed " << seed << ": fast=" << fast << " legacy=" << slow;
    // And the CSR overload agrees when every flow is active.
    const double csr_residual = kkt_residual(csr, ws.rates(), ws.prices());
    EXPECT_EQ(csr_residual, fast) << "seed " << seed;
  }
}

// The alpha == 1 fast path replaces pow(x, -1.0) with 1/x.  They are the
// same bit pattern on every x the solver can produce (IEEE-754 pow is exact
// for integer exponent -1 on this libm); this test is the canary that would
// catch a platform where they differ.
TEST(CsrSolverTest, PowMinusOneIsReciprocalBitwise) {
  sim::Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over the solver's realistic price range.
    const double x = std::exp(rng.uniform(std::log(1e-12), std::log(1e12)));
    const double via_pow = std::pow(x, -1.0);
    const double via_div = 1.0 / x;
    ASSERT_EQ(std::memcmp(&via_pow, &via_div, sizeof(double)), 0)
        << "pow(x,-1) != 1/x bitwise at x=" << x;
  }
}

// Re-solving against a reused workspace must not touch the heap: the
// allocs_solver_workspace counter measures it.
TEST(CsrSolverTest, WarmResolveIsAllocationFree) {
  const RandomInstance instance = make_random(1.0, 50, 10, 21);
  CsrProblem csr = CsrProblem::compile(instance.problem);
  NumWorkspace ws;
  solve(csr, ws);  // first solve sizes the buffers

  const std::uint64_t before = sim::substrate_stats().allocs_solver_workspace;
  csr.set_active(3, false);  // row patch — no recompile, no allocation
  solve(csr, ws);
  csr.set_active(3, true);
  ws.reset();  // cold restart reuses the same buffers
  solve(csr, ws);
  const std::uint64_t after = sim::substrate_stats().allocs_solver_workspace;
  EXPECT_EQ(after - before, 0u)
      << "warm re-solve allocated workspace buffers";
}

// set_active is a row patch: the solve over the active subset must be the
// solve of the freshly compiled subproblem — bitwise, including prices of
// links only the dropped flows used (they go to 0).
TEST(CsrSolverTest, SetActiveMatchesRecompiledSubproblem) {
  const RandomInstance full = make_random(1.0, 30, 8, 31);
  CsrProblem patched = CsrProblem::compile(full.problem);
  const std::vector<std::size_t> dropped = {2, 7, 11, 19, 28};
  for (const std::size_t flow : dropped) patched.set_active(flow, false);
  EXPECT_EQ(patched.active_count(), full.problem.utilities.size() - 5);
  NumWorkspace patched_ws;
  const SolveStats patched_stats = solve(patched, patched_ws);
  ASSERT_TRUE(patched_stats.converged);

  // The same instance with those rows physically removed.
  NumProblem sub;
  sub.capacities = full.problem.capacities;
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < full.problem.utilities.size(); ++i) {
    if (std::find(dropped.begin(), dropped.end(), i) != dropped.end()) {
      continue;
    }
    kept.push_back(i);
    sub.utilities.push_back(full.problem.utilities[i]);
    sub.flow_links.push_back(full.problem.flow_links[i]);
  }
  const CsrProblem sub_csr = CsrProblem::compile(sub);
  NumWorkspace sub_ws;
  const SolveStats sub_stats = solve(sub_csr, sub_ws);
  ASSERT_TRUE(sub_stats.converged);

  EXPECT_EQ(patched_stats.sweeps, sub_stats.sweeps);
  EXPECT_TRUE(bitwise_equal(patched_ws.prices(), sub_ws.prices()));
  for (std::size_t k = 0; k < kept.size(); ++k) {
    const double a = patched_ws.rates()[kept[k]];
    const double b = sub_ws.rates()[k];
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
        << "active flow " << kept[k] << " rate diverged";
  }
  for (const std::size_t flow : dropped) {
    EXPECT_EQ(patched_ws.rates()[flow], 0.0);
  }
}

// The deprecated wrapper is a thin adapter: identical results, bit for bit.
TEST(CsrSolverTest, SolveNumWrapperMatchesNewApi) {
  const RandomInstance instance = make_random(2.0, 40, 9, 41);
  const NumSolution legacy = solve_num(instance.problem);

  const CsrProblem csr = CsrProblem::compile(instance.problem);
  NumWorkspace ws;
  const SolveStats stats = solve(csr, ws);
  EXPECT_EQ(legacy.sweeps, stats.sweeps);
  EXPECT_EQ(legacy.converged, stats.converged);
  EXPECT_EQ(legacy.max_violation, stats.max_violation);
  EXPECT_TRUE(bitwise_equal(legacy.prices, ws.prices()));
  EXPECT_TRUE(bitwise_equal(legacy.rates, ws.rates()));
}

// Explicit initial_prices must match the link count exactly (legacy
// contract, preserved through the redesign).
TEST(CsrSolverTest, InitialPricesSizeMismatchThrows) {
  const RandomInstance instance = make_random(1.0, 4, 3, 51);
  const CsrProblem csr = CsrProblem::compile(instance.problem);
  NumWorkspace ws;
  NumSolverOptions options;
  options.initial_prices = {1.0};  // 3 links expected
  EXPECT_THROW(solve(csr, ws, options), std::invalid_argument);
}

// Explicit initial_prices override the workspace's warm state: seeding a
// fresh workspace with a previous solve's prices reproduces the reused
// workspace's warm re-solve exactly.
TEST(CsrSolverTest, ExplicitInitialPricesMatchWorkspaceWarmStart) {
  const RandomInstance instance = make_random(1.0, 25, 6, 61);
  CsrProblem csr = CsrProblem::compile(instance.problem);
  NumWorkspace reused;
  solve(csr, reused);
  const std::vector<double> after_cold(reused.prices().begin(),
                                       reused.prices().end());
  csr.set_active(0, false);
  const SolveStats warm = solve(csr, reused);

  NumWorkspace fresh;
  NumSolverOptions options;
  options.initial_prices = after_cold;
  const SolveStats seeded = solve(csr, fresh, options);
  EXPECT_EQ(warm.sweeps, seeded.sweeps);
  EXPECT_TRUE(bitwise_equal(reused.prices(), fresh.prices()));
  EXPECT_TRUE(bitwise_equal(reused.rates(), fresh.rates()));
}

// Wave schedule sanity: within a wave no two links share an active flow —
// the invariant the parallel executor's bit-identity argument rests on.
TEST(CsrSolverTest, WaveScheduleHasNoIntraWaveConflicts) {
  const RandomInstance instance = make_random(1.0, 60, 12, 71);
  const CsrProblem csr = CsrProblem::compile(instance.problem);
  std::size_t links_seen = 0;
  for (std::size_t w = 0; w < csr.num_waves(); ++w) {
    std::vector<int> flows_in_wave;
    for (const std::int32_t link : csr.wave_links(w)) {
      ++links_seen;
      for (const std::int32_t flow : csr.link_flows(
               static_cast<std::size_t>(link))) {
        EXPECT_EQ(std::find(flows_in_wave.begin(), flows_in_wave.end(), flow),
                  flows_in_wave.end())
            << "flow " << flow << " appears on two links of wave " << w;
        flows_in_wave.push_back(flow);
      }
    }
  }
  EXPECT_EQ(links_seen, csr.num_links());
}

}  // namespace
}  // namespace numfabric::num
