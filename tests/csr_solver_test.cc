// Properties of the compiled CSR solver path (num::CsrProblem +
// num::NumWorkspace + num::solve):
//
//  * serial vs parallel(2/4/8) wave execution is BITWISE identical — the
//    determinism contract behind --solver-threads (randomized problems
//    across alphas, cold and warm);
//  * solutions satisfy the KKT system to the solver tolerance;
//  * pow(x, -1.0) == 1.0 / x bitwise — the identity the alpha == 1
//    reciprocal fast path rests on;
//  * warm re-solves against a reused workspace are allocation-free
//    (measured by the allocs_solver_workspace substrate counter);
//  * a set_active row patch solves exactly the freshly compiled subproblem;
//  * the deprecated solve_num wrapper reproduces the new API bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "num/csr_problem.h"
#include "num/num_solver.h"
#include "num/utility.h"
#include "sim/random.h"
#include "sim/substrate_stats.h"

namespace numfabric::num {
namespace {

/// A randomized NUM instance that owns its utility objects (CsrProblem
/// borrows them).
struct RandomInstance {
  std::vector<std::unique_ptr<AlphaFairUtility>> utilities;
  NumProblem problem;
};

RandomInstance make_random(double alpha, int flows, int links,
                           std::uint64_t seed) {
  RandomInstance instance;
  sim::Rng rng(seed);
  instance.problem.capacities.resize(static_cast<std::size_t>(links));
  for (auto& c : instance.problem.capacities) c = rng.uniform(10.0, 100.0);
  for (int i = 0; i < flows; ++i) {
    instance.utilities.push_back(
        std::make_unique<AlphaFairUtility>(alpha, rng.uniform(0.5, 2.0)));
    instance.problem.utilities.push_back(instance.utilities.back().get());
    std::vector<int> path;
    const int hops = static_cast<int>(rng.uniform_int(1, 3));
    for (int h = 0; h < hops; ++h) {
      const int link =
          static_cast<int>(rng.index(static_cast<std::size_t>(links)));
      if (std::find(path.begin(), path.end(), link) == path.end()) {
        path.push_back(link);
      }
    }
    instance.problem.flow_links.push_back(path);
  }
  return instance;
}

/// Bitwise equality of two double sequences (EXPECT_EQ on doubles would
/// conflate -0.0 with 0.0 and choke on NaN).
::testing::AssertionResult bitwise_equal(std::span<const double> a,
                                         std::span<const double> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "index " << i << ": " << a[i] << " vs " << b[i]
             << " (bit patterns differ)";
    }
  }
  return ::testing::AssertionSuccess();
}

struct CsrCase {
  double alpha;
  int flows;
  int links;
  std::uint64_t seed;
};

class CsrSolverRandom : public ::testing::TestWithParam<CsrCase> {};

// The --solver-threads contract: for every thread count, prices AND rates
// are bit-identical to the serial reference sweep — cold, and warm after a
// set_active row patch.
TEST_P(CsrSolverRandom, ParallelIsBitIdenticalToSerial) {
  const CsrCase param = GetParam();
  const RandomInstance instance =
      make_random(param.alpha, param.flows, param.links, param.seed);

  CsrProblem serial_csr = CsrProblem::compile(instance.problem);
  NumWorkspace serial_ws;
  const SolveStats serial = solve(serial_csr, serial_ws);
  ASSERT_TRUE(serial.converged);

  for (const int threads : {2, 4, 8}) {
    CsrProblem csr = CsrProblem::compile(instance.problem);
    NumWorkspace ws;
    NumSolverOptions options;
    options.policy = ExecutionPolicy::parallel(threads);
    const SolveStats stats = solve(csr, ws, options);
    EXPECT_EQ(stats.sweeps, serial.sweeps) << "threads=" << threads;
    EXPECT_TRUE(bitwise_equal(ws.prices(), serial_ws.prices()))
        << "prices diverged at threads=" << threads;
    EXPECT_TRUE(bitwise_equal(ws.rates(), serial_ws.rates()))
        << "rates diverged at threads=" << threads;

    // Warm re-solve after a row patch: drop one flow on both sides, re-solve
    // from the previous prices, and the wave execution must still track the
    // serial sweep bit-for-bit.
    const std::size_t drop = static_cast<std::size_t>(param.seed) %
                             static_cast<std::size_t>(param.flows);
    serial_csr.set_active(drop, false);
    csr.set_active(drop, false);
    const SolveStats warm_serial = solve(serial_csr, serial_ws);
    const SolveStats warm_parallel = solve(csr, ws, options);
    EXPECT_EQ(warm_parallel.sweeps, warm_serial.sweeps);
    EXPECT_TRUE(bitwise_equal(ws.prices(), serial_ws.prices()))
        << "warm prices diverged at threads=" << threads;
    EXPECT_TRUE(bitwise_equal(ws.rates(), serial_ws.rates()))
        << "warm rates diverged at threads=" << threads;
    serial_csr.set_active(drop, true);
    serial_ws.reset();
    const SolveStats again = solve(serial_csr, serial_ws);
    ASSERT_TRUE(again.converged);
  }
}

// The CSR path must still be a correct NUM solver: KKT residual near zero.
TEST_P(CsrSolverRandom, SatisfiesKkt) {
  const CsrCase param = GetParam();
  const RandomInstance instance =
      make_random(param.alpha, param.flows, param.links, param.seed);
  const CsrProblem csr = CsrProblem::compile(instance.problem);
  NumWorkspace ws;
  const SolveStats stats = solve(csr, ws);
  ASSERT_TRUE(stats.converged);
  EXPECT_LT(stats.max_violation, 1e-6);
  const std::vector<double> rates(ws.rates().begin(), ws.rates().end());
  const std::vector<double> prices(ws.prices().begin(), ws.prices().end());
  EXPECT_LT(kkt_residual(instance.problem, rates, prices), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, CsrSolverRandom,
    ::testing::Values(CsrCase{0.5, 10, 4, 11}, CsrCase{1.0, 10, 4, 12},
                      CsrCase{2.0, 10, 4, 13}, CsrCase{1.0, 50, 10, 14},
                      CsrCase{4.0, 30, 8, 15}, CsrCase{0.125, 20, 6, 16},
                      CsrCase{1.0, 200, 30, 17}));

// The alpha == 1 fast path replaces pow(x, -1.0) with 1/x.  They are the
// same bit pattern on every x the solver can produce (IEEE-754 pow is exact
// for integer exponent -1 on this libm); this test is the canary that would
// catch a platform where they differ.
TEST(CsrSolverTest, PowMinusOneIsReciprocalBitwise) {
  sim::Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over the solver's realistic price range.
    const double x = std::exp(rng.uniform(std::log(1e-12), std::log(1e12)));
    const double via_pow = std::pow(x, -1.0);
    const double via_div = 1.0 / x;
    ASSERT_EQ(std::memcmp(&via_pow, &via_div, sizeof(double)), 0)
        << "pow(x,-1) != 1/x bitwise at x=" << x;
  }
}

// Re-solving against a reused workspace must not touch the heap: the
// allocs_solver_workspace counter measures it.
TEST(CsrSolverTest, WarmResolveIsAllocationFree) {
  const RandomInstance instance = make_random(1.0, 50, 10, 21);
  CsrProblem csr = CsrProblem::compile(instance.problem);
  NumWorkspace ws;
  solve(csr, ws);  // first solve sizes the buffers

  const std::uint64_t before = sim::substrate_stats().allocs_solver_workspace;
  csr.set_active(3, false);  // row patch — no recompile, no allocation
  solve(csr, ws);
  csr.set_active(3, true);
  ws.reset();  // cold restart reuses the same buffers
  solve(csr, ws);
  const std::uint64_t after = sim::substrate_stats().allocs_solver_workspace;
  EXPECT_EQ(after - before, 0u)
      << "warm re-solve allocated workspace buffers";
}

// set_active is a row patch: the solve over the active subset must be the
// solve of the freshly compiled subproblem — bitwise, including prices of
// links only the dropped flows used (they go to 0).
TEST(CsrSolverTest, SetActiveMatchesRecompiledSubproblem) {
  const RandomInstance full = make_random(1.0, 30, 8, 31);
  CsrProblem patched = CsrProblem::compile(full.problem);
  const std::vector<std::size_t> dropped = {2, 7, 11, 19, 28};
  for (const std::size_t flow : dropped) patched.set_active(flow, false);
  EXPECT_EQ(patched.active_count(), full.problem.utilities.size() - 5);
  NumWorkspace patched_ws;
  const SolveStats patched_stats = solve(patched, patched_ws);
  ASSERT_TRUE(patched_stats.converged);

  // The same instance with those rows physically removed.
  NumProblem sub;
  sub.capacities = full.problem.capacities;
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < full.problem.utilities.size(); ++i) {
    if (std::find(dropped.begin(), dropped.end(), i) != dropped.end()) {
      continue;
    }
    kept.push_back(i);
    sub.utilities.push_back(full.problem.utilities[i]);
    sub.flow_links.push_back(full.problem.flow_links[i]);
  }
  const CsrProblem sub_csr = CsrProblem::compile(sub);
  NumWorkspace sub_ws;
  const SolveStats sub_stats = solve(sub_csr, sub_ws);
  ASSERT_TRUE(sub_stats.converged);

  EXPECT_EQ(patched_stats.sweeps, sub_stats.sweeps);
  EXPECT_TRUE(bitwise_equal(patched_ws.prices(), sub_ws.prices()));
  for (std::size_t k = 0; k < kept.size(); ++k) {
    const double a = patched_ws.rates()[kept[k]];
    const double b = sub_ws.rates()[k];
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
        << "active flow " << kept[k] << " rate diverged";
  }
  for (const std::size_t flow : dropped) {
    EXPECT_EQ(patched_ws.rates()[flow], 0.0);
  }
}

// The deprecated wrapper is a thin adapter: identical results, bit for bit.
TEST(CsrSolverTest, SolveNumWrapperMatchesNewApi) {
  const RandomInstance instance = make_random(2.0, 40, 9, 41);
  const NumSolution legacy = solve_num(instance.problem);

  const CsrProblem csr = CsrProblem::compile(instance.problem);
  NumWorkspace ws;
  const SolveStats stats = solve(csr, ws);
  EXPECT_EQ(legacy.sweeps, stats.sweeps);
  EXPECT_EQ(legacy.converged, stats.converged);
  EXPECT_EQ(legacy.max_violation, stats.max_violation);
  EXPECT_TRUE(bitwise_equal(legacy.prices, ws.prices()));
  EXPECT_TRUE(bitwise_equal(legacy.rates, ws.rates()));
}

// Explicit initial_prices must match the link count exactly (legacy
// contract, preserved through the redesign).
TEST(CsrSolverTest, InitialPricesSizeMismatchThrows) {
  const RandomInstance instance = make_random(1.0, 4, 3, 51);
  const CsrProblem csr = CsrProblem::compile(instance.problem);
  NumWorkspace ws;
  NumSolverOptions options;
  options.initial_prices = {1.0};  // 3 links expected
  EXPECT_THROW(solve(csr, ws, options), std::invalid_argument);
}

// Explicit initial_prices override the workspace's warm state: seeding a
// fresh workspace with a previous solve's prices reproduces the reused
// workspace's warm re-solve exactly.
TEST(CsrSolverTest, ExplicitInitialPricesMatchWorkspaceWarmStart) {
  const RandomInstance instance = make_random(1.0, 25, 6, 61);
  CsrProblem csr = CsrProblem::compile(instance.problem);
  NumWorkspace reused;
  solve(csr, reused);
  const std::vector<double> after_cold(reused.prices().begin(),
                                       reused.prices().end());
  csr.set_active(0, false);
  const SolveStats warm = solve(csr, reused);

  NumWorkspace fresh;
  NumSolverOptions options;
  options.initial_prices = after_cold;
  const SolveStats seeded = solve(csr, fresh, options);
  EXPECT_EQ(warm.sweeps, seeded.sweeps);
  EXPECT_TRUE(bitwise_equal(reused.prices(), fresh.prices()));
  EXPECT_TRUE(bitwise_equal(reused.rates(), fresh.rates()));
}

// Wave schedule sanity: within a wave no two links share an active flow —
// the invariant the parallel executor's bit-identity argument rests on.
TEST(CsrSolverTest, WaveScheduleHasNoIntraWaveConflicts) {
  const RandomInstance instance = make_random(1.0, 60, 12, 71);
  const CsrProblem csr = CsrProblem::compile(instance.problem);
  std::size_t links_seen = 0;
  for (std::size_t w = 0; w < csr.num_waves(); ++w) {
    std::vector<int> flows_in_wave;
    for (const std::int32_t link : csr.wave_links(w)) {
      ++links_seen;
      for (const std::int32_t flow : csr.link_flows(
               static_cast<std::size_t>(link))) {
        EXPECT_EQ(std::find(flows_in_wave.begin(), flows_in_wave.end(), flow),
                  flows_in_wave.end())
            << "flow " << flow << " appears on two links of wave " << w;
        flows_in_wave.push_back(flow);
      }
    }
  }
  EXPECT_EQ(links_seen, csr.num_links());
}

}  // namespace
}  // namespace numfabric::num
