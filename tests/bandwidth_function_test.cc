// Bandwidth function (BwE) representation and induced utility tests.
#include <gtest/gtest.h>

#include <cmath>

#include "num/bandwidth_function.h"

namespace numfabric::num {
namespace {

TEST(BandwidthFunctionTest, EvaluatesPiecewiseLinear) {
  BandwidthFunction fn({{0, 0}, {2, 10'000}, {2.5, 15'000}});
  EXPECT_DOUBLE_EQ(fn.bandwidth(0), 0);
  EXPECT_DOUBLE_EQ(fn.bandwidth(1), 5'000);
  EXPECT_DOUBLE_EQ(fn.bandwidth(2), 10'000);
  EXPECT_DOUBLE_EQ(fn.bandwidth(2.25), 12'500);
  EXPECT_DOUBLE_EQ(fn.bandwidth(2.5), 15'000);
  // Tail continues with the last slope (10'000 per unit).
  EXPECT_DOUBLE_EQ(fn.bandwidth(3.5), 25'000);
}

TEST(BandwidthFunctionTest, InverseRoundTrip) {
  BandwidthFunction fn({{0, 0}, {2, 10'000}, {2.5, 15'000}});
  for (double f : {0.5, 1.0, 1.9, 2.2, 2.5, 3.0, 4.0}) {
    EXPECT_NEAR(fn.fair_share(fn.bandwidth(f)), f, 1e-9);
  }
}

TEST(BandwidthFunctionTest, FlatSegmentInverseReturnsLeftEdge) {
  BandwidthFunction fn({{0, 0}, {2, 0}, {2.5, 10'000}});
  // B == 0 on [0, 2]; the inverse of 0 is the leftmost f (0).
  EXPECT_DOUBLE_EQ(fn.fair_share(0.0), 0.0);
  EXPECT_NEAR(fn.fair_share(5'000), 2.25, 1e-9);
}

TEST(BandwidthFunctionTest, StrictifiedIsStrictlyIncreasing) {
  BandwidthFunction fn =
      BandwidthFunction({{0, 0}, {2, 0}, {2.5, 10'000}}).strictified(1.0);
  EXPECT_GT(fn.bandwidth(2.0), fn.bandwidth(1.0));
  EXPECT_GT(fn.bandwidth(1.0), 0.0);
  EXPECT_LT(fn.bandwidth(2.0), 5.0);  // the added slope is tiny
}

TEST(BandwidthFunctionTest, CappedTailAlmostFlat) {
  BandwidthFunction fn =
      BandwidthFunction({{0, 0}, {2.5, 10'000}}).capped(1.0);
  EXPECT_NEAR(fn.bandwidth(100.0), 10'000 + 97.5, 1e-6);
}

TEST(BandwidthFunctionTest, RejectsMalformedInput) {
  EXPECT_THROW(BandwidthFunction({{0, 0}}), std::invalid_argument);
  EXPECT_THROW(BandwidthFunction({{1, 0}, {2, 5}}), std::invalid_argument);
  EXPECT_THROW(BandwidthFunction({{0, 0}, {0.5, 5}, {0.5, 6}}),
               std::invalid_argument);
  EXPECT_THROW(BandwidthFunction({{0, 0}, {1, 5}, {2, 4}}), std::invalid_argument);
}

TEST(BandwidthFunctionUtilityTest, MarginalInverseIsBandwidthOfPrice) {
  // U'^{-1}(p) = B(p^{-1/alpha}) — the identity the Swift weight relies on.
  const double alpha = 5.0;
  BandwidthFunctionUtility u(fig2_flow1(), alpha);
  for (double f : {0.5, 1.0, 2.0, 2.4, 3.0}) {
    const double price = std::pow(f, -alpha);
    EXPECT_NEAR(u.marginal_inverse(price), fig2_flow1().bandwidth(f),
                1e-6 * fig2_flow1().bandwidth(f));
  }
}

TEST(BandwidthFunctionUtilityTest, MarginalRoundTrip) {
  BandwidthFunctionUtility u(fig2_flow1(), 5.0);
  for (double x : {1'000.0, 5'000.0, 12'000.0, 20'000.0}) {
    EXPECT_NEAR(u.marginal_inverse(u.marginal(x)), x, 1e-6 * x);
  }
}

TEST(BandwidthFunctionUtilityTest, UtilityIncreasing) {
  BandwidthFunctionUtility u(fig2_flow2(), 5.0);
  EXPECT_GT(u.utility(2'000), u.utility(1'000));
  EXPECT_GT(u.utility(10'000), u.utility(5'000));
}

TEST(Fig2FunctionsTest, MatchPaperDescription) {
  const BandwidthFunction b1 = fig2_flow1();
  const BandwidthFunction b2 = fig2_flow2();
  // Flow 1 has strict priority for the first 10 Gbps...
  EXPECT_DOUBLE_EQ(b1.bandwidth(2.0), 10'000);
  EXPECT_LT(b2.bandwidth(2.0), 10.0);
  // ...then flow 2 rises at twice the slope until 10 Gbps at f = 2.5.
  EXPECT_NEAR(b2.bandwidth(2.5), 10'000, 3.0);
  EXPECT_DOUBLE_EQ(b1.bandwidth(2.5), 15'000);
  const double slope1 = (b1.bandwidth(2.4) - b1.bandwidth(2.1)) / 0.3;
  const double slope2 = (b2.bandwidth(2.4) - b2.bandwidth(2.1)) / 0.3;
  EXPECT_NEAR(slope2 / slope1, 2.0, 0.01);
}

}  // namespace
}  // namespace numfabric::num
