// Flow-fluid engine cross-validation.
//
//  * exact mode reproduces num::fluid_fct_oracle bit-for-bit;
//  * grid mode upper-bounds exact FCTs and converges as the period shrinks;
//  * flow-vs-packet FCT comparison on a dumbbell and a small leaf-spine
//    (tolerance bands documented inline — the fluid model omits queueing
//    delay and convergence transients, so packet FCTs sit slightly above);
//  * VirtualLeafSpine path/capacity arithmetic;
//  * mega-fct mini-run sanity and the scenario layer's scheme gating;
//  * incremental (tier-2) re-solves vs full re-solves: FCTs within one grid
//    interval and a solver-tolerance mean band, bit-identical across solver
//    thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "exp/dynamic_workload.h"
#include "exp/flow_fidelity.h"
#include "flowsim/flow_sim_engine.h"
#include "flowsim/virtual_fabric.h"
#include "net/routing.h"
#include "net/topology.h"
#include "num/fluid_fct_oracle.h"
#include "num/utility.h"
#include "transport/fabric.h"

namespace numfabric {
namespace {

using flowsim::FlowSimEngine;
using flowsim::FlowSimFlow;
using flowsim::FlowSimOptions;
using flowsim::FlowSimResult;

// The staggered two-link sequence from the fluid-oracle tests: arrivals and
// departures interleave, so it exercises admissions, retirements and warm
// re-solves in both engines.
std::vector<FlowSimFlow> staggered_flows(const num::UtilityFunction* u) {
  std::vector<FlowSimFlow> flows(6);
  flows[0] = {0.0, 4e6, {0, 1}, u};
  flows[1] = {0.0, 2e6, {0}, u};
  flows[2] = {0.3e-3, 2e6, {1}, u};
  flows[3] = {0.9e-3, 3e6, {0}, u};
  flows[4] = {1.4e-3, 1e6, {0, 1}, u};
  flows[5] = {2.5e-3, 2e6, {1}, u};
  return flows;
}

std::vector<num::FluidFlow> as_fluid(const std::vector<FlowSimFlow>& flows) {
  std::vector<num::FluidFlow> fluid(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    fluid[i] = {flows[i].arrival_seconds, flows[i].size_bytes, flows[i].links,
                flows[i].utility};
  }
  return fluid;
}

double mean(const std::vector<double>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

TEST(FlowSimEngineTest, ExactModeMatchesFluidOracleBitForBit) {
  num::AlphaFairUtility u(1.0);
  const auto flows = staggered_flows(&u);
  const std::vector<double> capacities = {9'000.0, 9'000.0};

  const num::FluidFctResult oracle =
      num::fluid_fct_oracle(as_fluid(flows), capacities);
  const FlowSimResult engine = flowsim::run_flow_sim(flows, capacities, {});

  // Bit-for-bit: the exact mode IS the oracle's event loop.
  EXPECT_EQ(engine.fct_seconds, oracle.fct_seconds);
  EXPECT_EQ(engine.ideal_rate, oracle.ideal_rate);
  EXPECT_EQ(engine.completed, static_cast<int>(flows.size()));
  EXPECT_EQ(engine.incomplete, 0);
  // Exact mode re-solves at every arrival and departure.
  EXPECT_EQ(engine.resolves, static_cast<std::int64_t>(oracle.solves));
  EXPECT_EQ(engine.solver_sweeps, oracle.sweeps);
}

TEST(FlowSimEngineTest, GridModeUpperBoundsAndConvergesToExact) {
  num::AlphaFairUtility u(1.0);
  const auto flows = staggered_flows(&u);
  const std::vector<double> capacities = {9'000.0, 9'000.0};
  const FlowSimResult exact = flowsim::run_flow_sim(flows, capacities, {});

  double previous_error = std::numeric_limits<double>::infinity();
  for (const double period : {1e-4, 1e-5, 1e-6}) {
    FlowSimOptions options;
    options.resolve_interval_seconds = period;
    const FlowSimResult grid = flowsim::run_flow_sim(flows, capacities, options);
    ASSERT_EQ(grid.completed, static_cast<int>(flows.size())) << period;
    double max_error = 0.0;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      // Frozen rates and grid-point admission only delay completions: each
      // grid FCT upper-bounds the exact one (up to one period of slack from
      // departure-time rounding inside a window).
      EXPECT_GE(grid.fct_seconds[i], exact.fct_seconds[i] - period) << i;
      max_error = std::max(max_error, std::abs(grid.fct_seconds[i] -
                                               exact.fct_seconds[i]));
    }
    // Error shrinks with the period and is O(period)-sized.
    EXPECT_LE(max_error, previous_error + 1e-12);
    EXPECT_LT(max_error, 10 * period + 1e-9);
    previous_error = max_error;
    // One solve per tick (plus the initial admission), not per flow event.
    EXPECT_LE(grid.resolves, static_cast<std::int64_t>(
                                 grid.end_seconds / period) + 2);
  }
}

TEST(FlowSimEngineTest, HorizonMarksStragglersIncomplete) {
  num::AlphaFairUtility u(1.0);
  std::vector<FlowSimFlow> flows(2);
  flows[0] = {0.0, 1e6, {0}, &u};    // finishes fast
  flows[1] = {0.0, 1e12, {0}, &u};   // cannot finish by the horizon
  FlowSimOptions options;
  options.horizon_seconds = 0.01;
  const FlowSimResult result = flowsim::run_flow_sim(flows, {10'000.0}, options);
  EXPECT_EQ(result.completed, 1);
  EXPECT_EQ(result.incomplete, 1);
  EXPECT_GT(result.fct_seconds[0], 0.0);
  EXPECT_LT(result.fct_seconds[1], 0.0);  // negative marks incomplete
}

TEST(FlowSimEngineTest, ResetReplaysIdentically) {
  num::AlphaFairUtility u(1.0);
  const auto flows = staggered_flows(&u);
  FlowSimEngine engine(flows, {9'000.0, 9'000.0}, {});
  const FlowSimResult first = engine.run();
  engine.reset();
  const FlowSimResult second = engine.run();
  EXPECT_EQ(first.fct_seconds, second.fct_seconds);
  EXPECT_EQ(first.resolves, second.resolves);
}

// ---------------------------------------------------------------------------
// Flow vs packet: dumbbell.
// ---------------------------------------------------------------------------

// Three staggered finite flows over one 10G bottleneck, packet-level
// NUMFabric vs the exact flow-fluid engine.  The fluid model has no
// queueing, packetization or convergence transient, so packet FCTs sit a
// little above fluid ones; with multi-millisecond FCTs (microsecond RTTs)
// the gap is small.  Band: mean FCT within 25%, per-flow within 35%.
TEST(FlowFidelityCrossValidation, DumbbellFlowVsPacketFct) {
  const std::vector<double> sizes_bytes = {4e6, 2e6, 1e6};
  const std::vector<double> starts_seconds = {0.0, 0.5e-3, 1.0e-3};

  // Packet side.
  sim::Simulator sim;
  transport::FabricOptions fabric_options;
  fabric_options.scheme = transport::Scheme::kNumFabric;
  transport::Fabric fabric(sim, fabric_options);
  net::Topology topo(sim);
  const net::Dumbbell dumbbell =
      net::build_dumbbell(topo, 3, /*edge_bps=*/40e9, /*bottleneck_bps=*/10e9,
                          sim::micros(2), fabric.queue_factory());
  fabric.attach_agents(topo);
  num::AlphaFairUtility u(1.0);
  std::vector<transport::Flow*> packet_flows;
  for (std::size_t i = 0; i < sizes_bytes.size(); ++i) {
    transport::FlowSpec spec;
    spec.src = dumbbell.senders[i];
    spec.dst = dumbbell.receivers[i];
    spec.size_bytes = static_cast<std::uint64_t>(sizes_bytes[i]);
    spec.start_time = sim::TimeNs(starts_seconds[i] * sim::kSecond);
    spec.utility = &u;
    spec.path = net::all_shortest_paths(topo, spec.src, spec.dst).front();
    packet_flows.push_back(fabric.add_flow(std::move(spec)));
  }
  sim.run_until(sim::millis(100));

  // Fluid side: every flow crosses the one shared bottleneck.
  std::vector<FlowSimFlow> fluid_flows(sizes_bytes.size());
  for (std::size_t i = 0; i < sizes_bytes.size(); ++i) {
    fluid_flows[i] = {starts_seconds[i], sizes_bytes[i], {0}, &u};
  }
  const FlowSimResult fluid =
      flowsim::run_flow_sim(fluid_flows, {10'000.0}, {});

  std::vector<double> packet_fct, fluid_fct;
  for (std::size_t i = 0; i < sizes_bytes.size(); ++i) {
    ASSERT_TRUE(packet_flows[i]->completed()) << "packet flow " << i;
    packet_fct.push_back(sim::to_seconds(packet_flows[i]->fct()));
    fluid_fct.push_back(fluid.fct_seconds[i]);
    EXPECT_NEAR(packet_fct[i], fluid_fct[i], 0.35 * fluid_fct[i])
        << "flow " << i;
  }
  EXPECT_NEAR(mean(packet_fct), mean(fluid_fct), 0.25 * mean(fluid_fct));
}

// ---------------------------------------------------------------------------
// Flow vs packet: small leaf-spine Poisson workload.
// ---------------------------------------------------------------------------

// The same seeded websearch workload (identical RNG draws and ECMP picks)
// through the packet substrate and the flow runner.  Fluid FCTs carry the
// one-RTT latency charge; small flows are still RTT/convergence-dominated
// at packet level, so the band is wide: mean FCT ratio in [0.5, 2.0].
TEST(FlowFidelityCrossValidation, LeafSpineFlowVsPacketMeanFct) {
  exp::DynamicWorkloadOptions options;
  options.topology.hosts_per_leaf = 2;
  options.topology.num_leaves = 2;
  options.topology.num_spines = 1;
  options.flow_count = 40;
  options.load = 0.3;
  options.seed = 5;
  options.horizon = sim::seconds(2);

  const exp::DynamicWorkloadResult packet = exp::run_dynamic_workload(options);
  const exp::DynamicWorkloadResult flow =
      exp::run_dynamic_workload_flow(options, /*resolve_interval_seconds=*/0);

  ASSERT_FALSE(packet.flows.empty());
  ASSERT_FALSE(flow.flows.empty());
  // The flow runner draws the identical workload: same flow count and sizes.
  ASSERT_EQ(flow.flows.size() + static_cast<std::size_t>(flow.incomplete),
            packet.flows.size() + static_cast<std::size_t>(packet.incomplete));

  std::vector<double> packet_fct, flow_fct;
  for (const auto& f : packet.flows) packet_fct.push_back(f.fct_seconds);
  for (const auto& f : flow.flows) flow_fct.push_back(f.fct_seconds);
  const double ratio = mean(packet_fct) / mean(flow_fct);
  EXPECT_GT(ratio, 0.5) << "packet mean " << mean(packet_fct) << " flow mean "
                        << mean(flow_fct);
  EXPECT_LT(ratio, 2.0) << "packet mean " << mean(packet_fct) << " flow mean "
                        << mean(flow_fct);
}

// The same cross-validation on a small jellyfish fabric: both fidelities
// build the identical graph (same jf seed), draw the identical workload and
// pick the same k-shortest route per flow, so the only difference is the
// substrate.  Same band as the leaf-spine test: mean FCT ratio in [0.5, 2.0].
TEST(FlowFidelityCrossValidation, JellyfishFlowVsPacketMeanFct) {
  exp::DynamicWorkloadOptions options;
  options.jellyfish = net::JellyfishOptions{
      .switches = 4, .ports = 2, .hosts = 8, .seed = 3};
  options.k_paths = 4;
  options.flow_count = 40;
  options.load = 0.3;
  options.seed = 5;
  options.horizon = sim::seconds(2);

  const exp::DynamicWorkloadResult packet = exp::run_dynamic_workload(options);
  const exp::DynamicWorkloadResult flow =
      exp::run_dynamic_workload_flow(options, /*resolve_interval_seconds=*/0);

  ASSERT_FALSE(packet.flows.empty());
  ASSERT_FALSE(flow.flows.empty());
  ASSERT_EQ(flow.flows.size() + static_cast<std::size_t>(flow.incomplete),
            packet.flows.size() + static_cast<std::size_t>(packet.incomplete));

  std::vector<double> packet_fct, flow_fct;
  for (const auto& f : packet.flows) packet_fct.push_back(f.fct_seconds);
  for (const auto& f : flow.flows) flow_fct.push_back(f.fct_seconds);
  const double ratio = mean(packet_fct) / mean(flow_fct);
  EXPECT_GT(ratio, 0.5) << "packet mean " << mean(packet_fct) << " flow mean "
                        << mean(flow_fct);
  EXPECT_LT(ratio, 2.0) << "packet mean " << mean(packet_fct) << " flow mean "
                        << mean(flow_fct);
}

// ---------------------------------------------------------------------------
// VirtualLeafSpine arithmetic.
// ---------------------------------------------------------------------------

TEST(VirtualLeafSpineTest, CapacitiesFollowLayout) {
  const flowsim::VirtualLeafSpine fabric{.hosts_per_leaf = 2,
                                         .leaves = 3,
                                         .spines = 2,
                                         .host_rate = 10e3,
                                         .leaf_spine_rate = 40e3};
  EXPECT_EQ(fabric.hosts(), 6);
  EXPECT_EQ(fabric.links(), 2 * 6 + 2 * 3 * 2);
  const std::vector<double> capacities = fabric.capacities();
  ASSERT_EQ(capacities.size(), static_cast<std::size_t>(fabric.links()));
  for (int l = 0; l < 2 * fabric.hosts(); ++l) {
    EXPECT_EQ(capacities[static_cast<std::size_t>(l)], 10e3) << l;
  }
  for (int l = 2 * fabric.hosts(); l < fabric.links(); ++l) {
    EXPECT_EQ(capacities[static_cast<std::size_t>(l)], 40e3) << l;
  }
}

TEST(VirtualLeafSpineTest, PathsUseTheDocumentedIndices) {
  const flowsim::VirtualLeafSpine fabric{.hosts_per_leaf = 2,
                                         .leaves = 3,
                                         .spines = 2,
                                         .host_rate = 10e3,
                                         .leaf_spine_rate = 40e3};
  // Same leaf: src uplink, dst downlink.
  const auto same_leaf = fabric.path(0, 1, 7);
  ASSERT_EQ(same_leaf.size(), 2u);
  EXPECT_EQ(same_leaf[0], 0);
  EXPECT_EQ(same_leaf[1], fabric.hosts() + 1);

  // Cross leaf: uplink, leaf->spine, spine->leaf, downlink; deterministic in
  // the tiebreak and always a valid spine.
  const auto cross = fabric.path(0, 5, 7);
  ASSERT_EQ(cross.size(), 4u);
  EXPECT_EQ(cross[0], 0);
  EXPECT_EQ(cross[3], fabric.hosts() + 5);
  const int ls_base = 2 * fabric.hosts();
  EXPECT_GE(cross[1], ls_base + fabric.leaf_of(0) * fabric.spines);
  EXPECT_LT(cross[1], ls_base + (fabric.leaf_of(0) + 1) * fabric.spines);
  const int sl_base = ls_base + fabric.leaves * fabric.spines;
  EXPECT_GE(cross[2], sl_base + fabric.leaf_of(5) * fabric.spines);
  EXPECT_LT(cross[2], sl_base + (fabric.leaf_of(5) + 1) * fabric.spines);
  // Same spine on both hops.
  EXPECT_EQ(cross[1] - ls_base - fabric.leaf_of(0) * fabric.spines,
            cross[2] - sl_base - fabric.leaf_of(5) * fabric.spines);
  EXPECT_EQ(cross, fabric.path(0, 5, 7));  // deterministic

  EXPECT_THROW(fabric.path(0, 0, 1), std::invalid_argument);
  EXPECT_THROW(fabric.path(-1, 2, 1), std::invalid_argument);
  EXPECT_THROW(fabric.path(0, fabric.hosts(), 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// mega-fct mini-run.
// ---------------------------------------------------------------------------

TEST(MegaFctTest, MiniRunCompletesWithGridCounters) {
  exp::MegaFctOptions options;
  options.fabric = {.hosts_per_leaf = 4,
                    .leaves = 2,
                    .spines = 2,
                    .host_rate = 10e3,
                    .leaf_spine_rate = 40e3};
  options.concurrent = 2000;
  options.resolve_interval_seconds = 5e-4;
  options.horizon_seconds = 10.0;
  options.seed = 9;
  const exp::MegaFctResult result = exp::run_mega_fct(options);

  EXPECT_EQ(result.sim.completed + result.sim.incomplete, options.concurrent);
  EXPECT_GT(result.sim.completed, options.concurrent * 9 / 10);
  EXPECT_EQ(result.sim.peak_active, 2000u);  // all arrive at t = 0
  EXPECT_EQ(result.size_bytes.size(), 2000u);
  // Grid discipline: far fewer solves than flow events.
  EXPECT_LT(result.sim.resolves, result.sim.epochs);
  EXPECT_GT(result.sim.resolves, 0);
  EXPECT_GT(result.sim.solver_sweeps, 0);

  // Exact mode at this scale is refused by construction.
  options.resolve_interval_seconds = 0;
  EXPECT_THROW(exp::run_mega_fct(options), std::invalid_argument);
}

// Incremental (tier-2) property at the experiment level: the same mini
// mega-fct batch with incremental ON converges to the same answers as full
// re-solves — every FCT within one resolve interval (grid slack) and the
// mean within a solver-tolerance band — and the incremental run is
// bit-identical across solver thread counts.  Mirrors the CI sweep-smoke
// leg.
TEST(MegaFctTest, IncrementalMatchesFullWithinToleranceBand) {
  exp::MegaFctOptions options;
  options.fabric = {.hosts_per_leaf = 4,
                    .leaves = 2,
                    .spines = 2,
                    .host_rate = 10e3,
                    .leaf_spine_rate = 40e3};
  options.concurrent = 1000;
  options.resolve_interval_seconds = 5e-4;
  options.horizon_seconds = 10.0;
  options.seed = 9;

  options.incremental = false;
  const exp::MegaFctResult full = exp::run_mega_fct(options);
  options.incremental = true;
  const exp::MegaFctResult inc = exp::run_mega_fct(options);
  options.solver_threads = 4;
  const exp::MegaFctResult inc4 = exp::run_mega_fct(options);

  // Full solves never take the worklist path; incremental ones must.
  EXPECT_EQ(full.sim.solver_relaxations, 0);
  EXPECT_GT(inc.sim.solver_relaxations, 0);

  ASSERT_EQ(inc.sim.fct_seconds.size(), full.sim.fct_seconds.size());
  EXPECT_EQ(inc.sim.completed, full.sim.completed);
  double full_sum = 0.0;
  double inc_sum = 0.0;
  for (std::size_t i = 0; i < full.sim.fct_seconds.size(); ++i) {
    const double a = inc.sim.fct_seconds[i];
    const double b = full.sim.fct_seconds[i];
    if (a < 0.0 || b < 0.0) {
      EXPECT_EQ(a < 0.0, b < 0.0) << "completion status diverged, flow " << i;
      continue;
    }
    // Rates agree to the solver tolerance, so a completion can slip by at
    // most one grid point at a knife-edge.
    EXPECT_LE(std::abs(a - b), options.resolve_interval_seconds + 1e-9)
        << "flow " << i;
    full_sum += b;
    inc_sum += a;
  }
  EXPECT_NEAR(inc_sum / full_sum, 1.0, 1e-3);

  // The worklist is serial and verification sweeps are wave-deterministic:
  // thread count changes wall time, never bytes.
  EXPECT_EQ(inc4.sim.fct_seconds, inc.sim.fct_seconds);
  EXPECT_EQ(inc4.sim.solver_relaxations, inc.sim.solver_relaxations);
}

// The same ON-vs-OFF band through the dynamic-workload flow runner (grid
// mode): identical seeded workload, FCTs within one grid interval per flow.
TEST(FlowFidelityCrossValidation, DynamicWorkloadIncrementalMatchesFull) {
  exp::DynamicWorkloadOptions options;
  options.topology.hosts_per_leaf = 2;
  options.topology.num_leaves = 2;
  options.topology.num_spines = 1;
  options.flow_count = 40;
  options.load = 0.3;
  options.seed = 5;
  options.horizon = sim::seconds(2);
  const double resolve = 5e-5;

  const exp::DynamicWorkloadResult full =
      exp::run_dynamic_workload_flow(options, resolve, /*incremental=*/false);
  const exp::DynamicWorkloadResult inc =
      exp::run_dynamic_workload_flow(options, resolve, /*incremental=*/true);

  ASSERT_EQ(inc.flows.size(), full.flows.size());
  EXPECT_EQ(inc.incomplete, full.incomplete);
  for (std::size_t i = 0; i < full.flows.size(); ++i) {
    EXPECT_LE(std::abs(inc.flows[i].fct_seconds - full.flows[i].fct_seconds),
              resolve + 1e-9)
        << "flow " << i;
  }
}

TEST(MegaFctTest, JellyfishGraphFabricRuns) {
  exp::MegaFctOptions options;
  options.jellyfish = net::JellyfishOptions{
      .switches = 8, .ports = 3, .hosts = 16, .seed = 2};
  options.k_paths = 4;
  options.concurrent = 1000;
  options.resolve_interval_seconds = 5e-4;
  options.horizon_seconds = 10.0;
  options.seed = 9;
  const exp::MegaFctResult result = exp::run_mega_fct(options);

  EXPECT_EQ(result.hosts, 16);
  // 16 edge cables + 8 * 3 / 2 core cables, two directed links each.
  EXPECT_EQ(result.links, 2 * (16 + 8 * 3 / 2));
  EXPECT_EQ(result.sim.completed + result.sim.incomplete, options.concurrent);
  EXPECT_GT(result.sim.completed, options.concurrent * 9 / 10);
  EXPECT_GT(result.sim.resolves, 0);

  // Same options -> bit-identical FCTs (graph wiring and path table are
  // deterministic in the seed).
  const exp::MegaFctResult again = exp::run_mega_fct(options);
  EXPECT_EQ(result.sim.fct_seconds, again.sim.fct_seconds);
}

}  // namespace
}  // namespace numfabric
