// Measurement utilities: EWMA, rate meter, convergence detector, summaries.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/convergence.h"
#include "stats/ewma.h"
#include "stats/fct_tracker.h"
#include "stats/rate_meter.h"
#include "stats/summary.h"

namespace numfabric::stats {
namespace {

TEST(EwmaTest, FirstSampleInitializes) {
  Ewma filter(sim::micros(20));
  filter.update(5.0, 0);
  EXPECT_TRUE(filter.initialized());
  EXPECT_DOUBLE_EQ(filter.value(), 5.0);
}

TEST(EwmaTest, StepResponseTimeConstant) {
  Ewma filter(sim::micros(100));
  filter.update(0.0, 0);
  // Step to 1.0, sampled densely for one time constant: ~63% absorbed.
  for (sim::TimeNs t = sim::micros(1); t <= sim::micros(100); t += sim::micros(1)) {
    filter.update(1.0, t);
  }
  EXPECT_NEAR(filter.value(), 1.0 - std::exp(-1.0), 0.01);
}

TEST(EwmaTest, LargeGapAbsorbsSampleFully) {
  Ewma filter(sim::micros(10));
  filter.update(1.0, 0);
  filter.update(9.0, sim::millis(10));  // 1000 time constants later
  EXPECT_NEAR(filter.value(), 9.0, 1e-6);
}

TEST(EwmaTest, RiseTimeMatchesPaper) {
  // The paper: log(10) * 80 us ~ 185 us to reach 90%.
  const sim::TimeNs rise = Ewma::rise_time(sim::micros(80), 0.9);
  EXPECT_NEAR(sim::to_micros(rise), 184.2, 1.0);
}

TEST(RateMeterTest, MeasuresSteadyStream) {
  RateMeter meter(sim::micros(80));
  // 1500 B every 1.2 us = 10 Gbps.
  for (int i = 0; i <= 400; ++i) {
    meter.on_bytes(1500, static_cast<sim::TimeNs>(i) * 1200);
  }
  EXPECT_NEAR(meter.rate_bps(), 10e9, 0.02e9);
  EXPECT_EQ(meter.total_bytes(), 401u * 1500u);
}

TEST(RateMeterTest, TracksRateChange) {
  RateMeter meter(sim::micros(20));
  sim::TimeNs t = 0;
  for (int i = 0; i < 200; ++i) meter.on_bytes(1500, t += 1200);   // 10G
  for (int i = 0; i < 400; ++i) meter.on_bytes(1500, t += 2400);   // 5G
  EXPECT_NEAR(meter.rate_bps(), 5e9, 0.1e9);
}

TEST(ConvergenceDetectorTest, ConvergesAfterHold) {
  std::vector<double> rates = {9.0, 11.0};
  ConvergenceOptions options;
  options.hold = sim::millis(5);
  options.sample_interval = sim::micros(100);
  options.filter_rise_time = sim::micros(185);
  ConvergenceDetector detector({10.0, 10.0}, [&rates] { return rates; }, options);
  sim::TimeNs now = sim::millis(1);  // event at t=0, in band from 1 ms
  while (!detector.sample(now)) now += options.sample_interval;
  ASSERT_TRUE(detector.converged());
  // Converged at the first in-band sample (1 ms) minus the filter rise time.
  EXPECT_NEAR(sim::to_micros(detector.convergence_time(0)), 1000 - 185, 1.0);
}

TEST(ConvergenceDetectorTest, ResetOnLeavingBand) {
  int calls = 0;
  ConvergenceOptions options;
  options.hold = sim::millis(1);
  ConvergenceDetector detector(
      {10.0},
      [&calls]() -> std::vector<double> {
        ++calls;
        // In band for a while, dips out, then returns.
        if (calls < 50) return {10.0};
        if (calls < 60) return {2.0};
        return {10.0};
      },
      options);
  sim::TimeNs now = 0;
  while (!detector.sample(now)) now += sim::micros(20);
  ASSERT_TRUE(detector.converged());
  // The dip at call ~50 (t ~ 1 ms) restarts the hold window: convergence
  // declared only for the run starting at call 60.
  EXPECT_GE(sim::to_micros(detector.convergence_time(0)), 1100);
}

TEST(ConvergenceDetectorTest, TimesOut) {
  ConvergenceOptions options;
  options.timeout = sim::millis(2);
  ConvergenceDetector detector({10.0}, [] { return std::vector<double>{1.0}; },
                               options);
  sim::TimeNs now = 0;
  while (!detector.sample(now)) now += sim::micros(100);
  EXPECT_TRUE(detector.finished());
  EXPECT_FALSE(detector.converged());
  EXPECT_THROW(detector.convergence_time(0), std::logic_error);
}

TEST(ConvergenceDetectorTest, FractionThreshold) {
  // 19 of 20 flows in band = 95%: converged; 18 of 20: not.
  ConvergenceOptions options;
  options.hold = sim::micros(100);
  options.sample_interval = sim::micros(10);
  auto run = [&](int bad_flows) {
    std::vector<double> rates(20, 10.0);
    for (int i = 0; i < bad_flows; ++i) rates[static_cast<std::size_t>(i)] = 1.0;
    ConvergenceDetector detector(std::vector<double>(20, 10.0),
                                 [&rates] { return rates; }, options);
    sim::TimeNs now = 0;
    while (!detector.sample(now)) now += options.sample_interval;
    return detector.converged();
  };
  EXPECT_TRUE(run(1));
  EXPECT_FALSE(run(2));
}

TEST(ConvergenceDetectorTest, ZeroTargetsAreVacuouslyConverged) {
  ConvergenceOptions options;
  options.hold = sim::micros(50);
  ConvergenceDetector detector({0.0, 10.0},
                               [] { return std::vector<double>{5.0, 10.0}; },
                               options);
  sim::TimeNs now = 0;
  while (!detector.sample(now)) now += sim::micros(10);
  EXPECT_TRUE(detector.converged());
}

TEST(SummaryTest, PercentileInterpolates) {
  std::vector<double> data = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(data, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(data, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(data, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(data, 62.5), 3.5);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(SummaryTest, BoxPlotWhiskersWithin15Iqr) {
  std::vector<double> data;
  for (int i = 1; i <= 100; ++i) data.push_back(i);
  data.push_back(1000);  // outlier
  const BoxPlot box = box_plot(data);
  EXPECT_NEAR(box.p50, 51, 1.0);
  EXPECT_LT(box.whisker_high, 200);  // outlier excluded
  EXPECT_GE(box.whisker_low, 1);
}

TEST(SummaryTest, CdfMonotone) {
  std::vector<double> data = {5, 1, 4, 2, 3};
  const auto points = cdf(data, 11);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].first, points[i - 1].first);
    EXPECT_GT(points[i].second, points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(points.front().first, 1.0);
  EXPECT_DOUBLE_EQ(points.back().first, 5.0);
}

TEST(FctTrackerTest, RecordsLifecycle) {
  FctTracker tracker;
  const std::size_t index = tracker.on_start(7, 1'000'000, sim::millis(1));
  EXPECT_EQ(tracker.completed_count(), 0u);
  tracker.on_finish(index, sim::millis(3));
  EXPECT_EQ(tracker.completed_count(), 1u);
  const FctRecord& record = tracker.records()[index];
  EXPECT_EQ(record.fct(), sim::millis(2));
  EXPECT_NEAR(record.rate_bps(), 4e9, 1e6);
  EXPECT_THROW(tracker.on_finish(index, sim::millis(4)), std::logic_error);
  EXPECT_THROW(tracker.on_finish(99, 0), std::out_of_range);
}

}  // namespace
}  // namespace numfabric::stats
