// End-to-end transport tests: packet-level runs on small topologies checked
// against closed-form / oracle allocations.
#include <gtest/gtest.h>

#include <memory>

#include "net/routing.h"
#include "net/topology.h"
#include "num/utility.h"
#include "transport/fabric.h"
#include "transport/numfabric/swift_sender.h"
#include "transport/receiver.h"
#include "transport/sender_base.h"

namespace numfabric {
namespace {

using transport::Fabric;
using transport::FabricOptions;
using transport::Flow;
using transport::FlowSpec;
using transport::Scheme;

struct Rig {
  sim::Simulator sim;
  FabricOptions options;
  std::unique_ptr<Fabric> fabric;
  std::unique_ptr<net::Topology> topo;
  net::Dumbbell dumbbell;

  explicit Rig(Scheme scheme, double bottleneck_bps = 10e9, int hosts = 4) {
    options.scheme = scheme;
    fabric = std::make_unique<Fabric>(sim, options);
    topo = std::make_unique<net::Topology>(sim);
    dumbbell = net::build_dumbbell(*topo, hosts, /*edge_bps=*/40e9,
                                   bottleneck_bps, sim::micros(2),
                                   fabric->queue_factory());
    fabric->attach_agents(*topo);
  }

  Flow* add_flow(int i, const num::UtilityFunction* utility,
                 std::uint64_t size = 0, sim::TimeNs start = 0) {
    FlowSpec spec;
    spec.src = dumbbell.senders[static_cast<std::size_t>(i)];
    spec.dst = dumbbell.receivers[static_cast<std::size_t>(i)];
    spec.size_bytes = size;
    spec.start_time = start;
    spec.utility = utility;
    const auto paths = net::all_shortest_paths(*topo, spec.src, spec.dst);
    spec.path = paths.front();
    return fabric->add_flow(std::move(spec));
  }

  /// Average goodput over [from, to], bps.
  double goodput_bps(Flow* flow, sim::TimeNs from, sim::TimeNs to) {
    std::uint64_t start_bytes = 0;
    sim.schedule_at(from, [&] { start_bytes = flow->receiver().total_bytes(); });
    sim.run_until(to);
    return static_cast<double>(flow->receiver().total_bytes() - start_bytes) *
           8.0 / sim::to_seconds(to - from);
  }
};

TEST(SwiftTest, SingleFlowSaturatesBottleneck) {
  Rig rig(Scheme::kNumFabric);
  num::AlphaFairUtility log_utility(1.0);
  Flow* flow = rig.add_flow(0, &log_utility);
  std::uint64_t start_bytes = 0;
  rig.sim.schedule_at(sim::millis(2),
                      [&] { start_bytes = flow->receiver().total_bytes(); });
  rig.sim.run_until(sim::millis(6));
  const double goodput =
      static_cast<double>(flow->receiver().total_bytes() - start_bytes) * 8.0 /
      sim::to_seconds(sim::millis(4));
  // ACK overhead on the reverse path costs nothing here; expect ~full rate.
  EXPECT_GT(goodput, 0.93 * 10e9);
  EXPECT_LE(goodput, 10e9);
}

TEST(SwiftTest, RateEstimateTracksBottleneck) {
  Rig rig(Scheme::kNumFabric);
  num::AlphaFairUtility log_utility(1.0);
  Flow* flow = rig.add_flow(0, &log_utility);
  rig.sim.run_until(sim::millis(3));
  const auto& sender = dynamic_cast<const transport::SwiftSender&>(flow->sender());
  EXPECT_NEAR(sender.estimated_rate_bps(), 10e9, 0.08 * 10e9);
}

TEST(NumFabricTest, TwoFlowsProportionalFairEqualSplit) {
  Rig rig(Scheme::kNumFabric);
  num::AlphaFairUtility log_utility(1.0);
  Flow* flow1 = rig.add_flow(0, &log_utility);
  Flow* flow2 = rig.add_flow(1, &log_utility);
  std::uint64_t start1 = 0, start2 = 0;
  rig.sim.schedule_at(sim::millis(3), [&] {
    start1 = flow1->receiver().total_bytes();
    start2 = flow2->receiver().total_bytes();
  });
  rig.sim.run_until(sim::millis(8));
  const double seconds = sim::to_seconds(sim::millis(5));
  const double rate1 =
      static_cast<double>(flow1->receiver().total_bytes() - start1) * 8 / seconds;
  const double rate2 =
      static_cast<double>(flow2->receiver().total_bytes() - start2) * 8 / seconds;
  EXPECT_NEAR(rate1, 5e9, 0.5e9);
  EXPECT_NEAR(rate2, 5e9, 0.5e9);
  EXPECT_GT(rate1 + rate2, 0.92 * 10e9);
}

TEST(NumFabricTest, WeightedUtilitiesSplitProportionally) {
  Rig rig(Scheme::kNumFabric);
  num::AlphaFairUtility weight1(1.0, 1.0);
  num::AlphaFairUtility weight3(1.0, 3.0);
  Flow* flow1 = rig.add_flow(0, &weight1);
  Flow* flow2 = rig.add_flow(1, &weight3);
  std::uint64_t start1 = 0, start2 = 0;
  rig.sim.schedule_at(sim::millis(3), [&] {
    start1 = flow1->receiver().total_bytes();
    start2 = flow2->receiver().total_bytes();
  });
  rig.sim.run_until(sim::millis(9));
  const double rate1 =
      static_cast<double>(flow1->receiver().total_bytes() - start1);
  const double rate2 =
      static_cast<double>(flow2->receiver().total_bytes() - start2);
  // Weighted proportional fairness on one link: rates in the 1:3 ratio.
  EXPECT_NEAR(rate2 / rate1, 3.0, 0.45);
}

TEST(DgdTest, TwoFlowsConvergeToEqualSplit) {
  Rig rig(Scheme::kDgd);
  num::AlphaFairUtility log_utility(1.0);
  Flow* flow1 = rig.add_flow(0, &log_utility);
  Flow* flow2 = rig.add_flow(1, &log_utility);
  std::uint64_t start1 = 0, start2 = 0;
  rig.sim.schedule_at(sim::millis(6), [&] {
    start1 = flow1->receiver().total_bytes();
    start2 = flow2->receiver().total_bytes();
  });
  rig.sim.run_until(sim::millis(14));
  const double seconds = sim::to_seconds(sim::millis(8));
  const double rate1 =
      static_cast<double>(flow1->receiver().total_bytes() - start1) * 8 / seconds;
  const double rate2 =
      static_cast<double>(flow2->receiver().total_bytes() - start2) * 8 / seconds;
  EXPECT_NEAR(rate1, 5e9, 1e9);
  EXPECT_NEAR(rate2, 5e9, 1e9);
}

TEST(RcpTest, TwoFlowsConvergeToEqualSplit) {
  Rig rig(Scheme::kRcpStar);
  Flow* flow1 = rig.add_flow(0, nullptr);
  Flow* flow2 = rig.add_flow(1, nullptr);
  std::uint64_t start1 = 0, start2 = 0;
  rig.sim.schedule_at(sim::millis(6), [&] {
    start1 = flow1->receiver().total_bytes();
    start2 = flow2->receiver().total_bytes();
  });
  rig.sim.run_until(sim::millis(14));
  const double seconds = sim::to_seconds(sim::millis(8));
  const double rate1 =
      static_cast<double>(flow1->receiver().total_bytes() - start1) * 8 / seconds;
  const double rate2 =
      static_cast<double>(flow2->receiver().total_bytes() - start2) * 8 / seconds;
  EXPECT_NEAR(rate1, 5e9, 1e9);
  EXPECT_NEAR(rate2, 5e9, 1e9);
}

TEST(DctcpTest, FlowsShareBottleneckRoughly) {
  Rig rig(Scheme::kDctcp);
  Flow* flow1 = rig.add_flow(0, nullptr);
  Flow* flow2 = rig.add_flow(1, nullptr);
  std::uint64_t start1 = 0, start2 = 0;
  rig.sim.schedule_at(sim::millis(10), [&] {
    start1 = flow1->receiver().total_bytes();
    start2 = flow2->receiver().total_bytes();
  });
  rig.sim.run_until(sim::millis(30));
  const double seconds = sim::to_seconds(sim::millis(20));
  const double rate1 =
      static_cast<double>(flow1->receiver().total_bytes() - start1) * 8 / seconds;
  const double rate2 =
      static_cast<double>(flow2->receiver().total_bytes() - start2) * 8 / seconds;
  // DCTCP is fair only on average; allow a wide band but require utilization.
  EXPECT_GT(rate1 + rate2, 0.8 * 10e9);
  EXPECT_NEAR(rate1, 5e9, 2.5e9);
  EXPECT_NEAR(rate2, 5e9, 2.5e9);
}

TEST(PFabricTest, ShortFlowPreemptsLongFlow) {
  Rig rig(Scheme::kPFabric);
  // Long-running background flow, then a 150 KB flow arrives: with SRPT
  // scheduling the short flow should finish in ~ its solo time.
  Flow* background = rig.add_flow(0, nullptr, 50'000'000, 0);
  const std::uint64_t short_size = 150'000;
  Flow* short_flow = rig.add_flow(1, nullptr, short_size, sim::millis(2));
  rig.sim.run_until(sim::millis(10));
  ASSERT_TRUE(short_flow->completed());
  const double solo_seconds = static_cast<double>(short_size) * 8.0 / 10e9 +
                              sim::to_seconds(sim::micros(16));
  EXPECT_LT(sim::to_seconds(short_flow->fct()), 2.5 * solo_seconds);
  EXPECT_FALSE(background->completed());
}

TEST(NumFabricTest, FiniteFlowCompletesAndReportsFct) {
  Rig rig(Scheme::kNumFabric);
  num::AlphaFairUtility log_utility(1.0);
  Flow* flow = rig.add_flow(0, &log_utility, 1'000'000);
  bool callback_fired = false;
  rig.fabric->set_on_complete([&](Flow& f) {
    callback_fired = true;
    EXPECT_EQ(&f, flow);
  });
  rig.sim.run_until(sim::millis(20));
  ASSERT_TRUE(flow->completed());
  EXPECT_TRUE(callback_fired);
  // 1 MB at 10 Gbps is ~0.8 ms; allow start-up overhead.
  EXPECT_LT(sim::to_seconds(flow->fct()), 3e-3);
  EXPECT_GT(sim::to_seconds(flow->fct()), 0.8e-3);
}

TEST(NumFabricTest, StoppedFlowReleasesBandwidth) {
  Rig rig(Scheme::kNumFabric);
  num::AlphaFairUtility log_utility(1.0);
  Flow* flow1 = rig.add_flow(0, &log_utility);
  Flow* flow2 = rig.add_flow(1, &log_utility);
  rig.sim.schedule_at(sim::millis(4), [&] { rig.fabric->stop_flow(*flow2); });
  std::uint64_t start1 = 0;
  rig.sim.schedule_at(sim::millis(6),
                      [&] { start1 = flow1->receiver().total_bytes(); });
  rig.sim.run_until(sim::millis(10));
  const double rate1 =
      static_cast<double>(flow1->receiver().total_bytes() - start1) * 8 /
      sim::to_seconds(sim::millis(4));
  EXPECT_GT(rate1, 0.9 * 10e9);  // flow1 takes over the whole bottleneck
}

TEST(NumFabricTest, ManyFlowsShareFairly) {
  Rig rig(Scheme::kNumFabric, 10e9, 8);
  num::AlphaFairUtility log_utility(1.0);
  std::vector<Flow*> flows;
  for (int i = 0; i < 8; ++i) flows.push_back(rig.add_flow(i, &log_utility));
  std::vector<std::uint64_t> start(8, 0);
  rig.sim.schedule_at(sim::millis(4), [&] {
    for (int i = 0; i < 8; ++i) start[i] = flows[i]->receiver().total_bytes();
  });
  rig.sim.run_until(sim::millis(10));
  for (int i = 0; i < 8; ++i) {
    const double rate =
        static_cast<double>(flows[i]->receiver().total_bytes() - start[i]) * 8 /
        sim::to_seconds(sim::millis(6));
    EXPECT_NEAR(rate, 10e9 / 8, 0.25e9) << "flow " << i;
  }
}

}  // namespace
}  // namespace numfabric
