// Unit tests for the discrete-event core.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace numfabric::sim {
namespace {

TEST(TimeTest, NamedConstructors) {
  EXPECT_EQ(micros(1), 1'000);
  EXPECT_EQ(millis(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_micros(micros(7)), 7.0);
}

TEST(TimeTest, TransmissionTimeExact) {
  // 1500 B at 10 Gbps = 1.2 us; at 40 Gbps = 300 ns.
  EXPECT_EQ(transmission_time(1500, 10e9), 1200);
  EXPECT_EQ(transmission_time(1500, 40e9), 300);
  EXPECT_EQ(transmission_time(40, 10e9), 32);
}

TEST(EventQueueTest, OrdersByTime) {
  EventQueue queue;
  std::vector<int> order;
  queue.push(30, [&] { order.push_back(3); });
  queue.push(10, [&] { order.push_back(1); });
  queue.push(20, [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoTieBreakAtSameTime) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.push(42, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  const EventId id = queue.push(5, [&] { ran = true; });
  queue.push(6, [] {});
  queue.cancel(id);
  EXPECT_EQ(queue.size(), 1u);
  while (!queue.empty()) queue.pop().action();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelFiredEventIsNoop) {
  EventQueue queue;
  const EventId id = queue.push(1, [] {});
  queue.pop().action();
  queue.cancel(id);  // must not corrupt accounting
  EXPECT_TRUE(queue.empty());
  queue.push(2, [] {});
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueTest, CancelHeadThenNextTime) {
  EventQueue queue;
  const EventId id = queue.push(1, [] {});
  queue.push(9, [] {});
  queue.cancel(id);
  EXPECT_EQ(queue.next_time(), 9);
}

TEST(EventQueueTest, CancelOfCancelledIsNoop) {
  EventQueue queue;
  bool survivor_ran = false;
  const EventId id = queue.push(5, [] {});
  queue.push(6, [&] { survivor_ran = true; });
  queue.cancel(id);
  queue.cancel(id);  // double cancel: generation no longer matches
  EXPECT_EQ(queue.size(), 1u);
  while (!queue.empty()) queue.pop().action();
  EXPECT_TRUE(survivor_ran);
}

TEST(EventQueueTest, StaleHandleDoesNotCancelSlotReuse) {
  // After an event fires (or is cancelled) its slot is recycled for the next
  // push.  The old handle carries the old generation, so cancelling it must
  // not kill the slot's new occupant.
  EventQueue queue;
  const EventId stale = queue.push(1, [] {});
  queue.pop().action();  // fires; slot 0 returns to the free list
  bool second_ran = false;
  const EventId fresh = queue.push(2, [&] { second_ran = true; });
  EXPECT_NE(stale, fresh);
  queue.cancel(stale);  // must be a no-op
  EXPECT_EQ(queue.size(), 1u);
  queue.pop().action();
  EXPECT_TRUE(second_ran);
}

TEST(EventQueueTest, HandlesAreNeverTheNoEventSentinel) {
  EventQueue queue;
  for (int i = 0; i < 100; ++i) {
    const EventId id = queue.push(i, [] {});
    EXPECT_NE(id, kNoEvent);
    if (i % 3 == 0) queue.cancel(id);
  }
  while (!queue.empty()) queue.pop().action();
}

TEST(EventQueueTest, LargeCapturesSpillButStillRun) {
  // Captures beyond the inline buffer fall back to one heap allocation and
  // must behave identically.
  EventQueue queue;
  struct Big {
    std::uint64_t payload[16];
  };
  Big big{};
  big.payload[7] = 42;
  std::uint64_t seen = 0;
  queue.push(1, [big, &seen] { seen = big.payload[7]; });
  queue.pop().action();
  EXPECT_EQ(seen, 42u);
}

// Randomized push/cancel/pop stress, cross-checked against a naive reference
// queue (linear scan for the (time, push-order) minimum).
TEST(EventQueueTest, RandomizedStressMatchesNaiveReference) {
  struct RefEvent {
    TimeNs at;
    std::uint64_t order;
    int tag;
    bool alive;
  };
  EventQueue queue;
  std::vector<RefEvent> reference;
  std::vector<EventId> handles;
  std::vector<int> fired;
  std::vector<int> expected;
  Rng rng(1234);
  std::uint64_t order = 0;
  int next_tag = 0;

  for (int step = 0; step < 20'000; ++step) {
    const double dice = rng.uniform();
    if (dice < 0.5) {
      const auto at = static_cast<TimeNs>(rng.uniform_int(0, 1000));
      const int tag = next_tag++;
      handles.push_back(queue.push(at, [tag, &fired] { fired.push_back(tag); }));
      reference.push_back({at, order++, tag, true});
    } else if (dice < 0.75 && !reference.empty()) {
      // Cancel a random event — possibly one already popped or cancelled, to
      // exercise the stale-handle path.
      const std::size_t i = rng.index(reference.size());
      queue.cancel(handles[i]);
      reference[i].alive = false;
    } else if (!queue.empty()) {
      // Pop from the real queue; the reference picks its (time, order) min.
      std::size_t best = reference.size();
      for (std::size_t i = 0; i < reference.size(); ++i) {
        if (!reference[i].alive) continue;
        if (best == reference.size() || reference[i].at < reference[best].at ||
            (reference[i].at == reference[best].at &&
             reference[i].order < reference[best].order)) {
          best = i;
        }
      }
      ASSERT_NE(best, reference.size());
      EXPECT_EQ(queue.next_time(), reference[best].at);
      queue.pop().action();
      expected.push_back(reference[best].tag);
      reference[best].alive = false;
    }
    ASSERT_EQ(queue.size(), static_cast<std::size_t>(std::count_if(
                                reference.begin(), reference.end(),
                                [](const RefEvent& e) { return e.alive; })));
  }
  while (!queue.empty()) {
    std::size_t best = reference.size();
    for (std::size_t i = 0; i < reference.size(); ++i) {
      if (!reference[i].alive) continue;
      if (best == reference.size() || reference[i].at < reference[best].at ||
          (reference[i].at == reference[best].at &&
           reference[i].order < reference[best].order)) {
        best = i;
      }
    }
    queue.pop().action();
    expected.push_back(reference[best].tag);
    reference[best].alive = false;
  }
  EXPECT_EQ(fired, expected);
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  TimeNs seen = -1;
  sim.schedule_in(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndSetsClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(50, [&] { ++fired; });
  sim.schedule_in(150, [&] { ++fired; });
  sim.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100);
  sim.run_until(200);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NestedSchedulingDuringRun) {
  Simulator sim;
  std::vector<TimeNs> times;
  sim.schedule_in(10, [&] {
    times.push_back(sim.now());
    sim.schedule_in(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<TimeNs>{10, 15}));
}

TEST(SimulatorTest, StopAbortsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_in(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.pending());
}

TEST(SimulatorTest, RejectsNegativeDelayAndPastSchedule) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_in(-1, [] {}), std::invalid_argument);
  sim.schedule_in(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, CancelTimer) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_in(10, [&] { ran = true; });
  sim.schedule_in(5, [&] { sim.cancel(id); });
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(7);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(3);
  const auto perm = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (std::size_t v : perm) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, IndexBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

}  // namespace
}  // namespace numfabric::sim
