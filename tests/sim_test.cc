// Unit tests for the discrete-event core.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace numfabric::sim {
namespace {

TEST(TimeTest, NamedConstructors) {
  EXPECT_EQ(micros(1), 1'000);
  EXPECT_EQ(millis(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_micros(micros(7)), 7.0);
}

TEST(TimeTest, TransmissionTimeExact) {
  // 1500 B at 10 Gbps = 1.2 us; at 40 Gbps = 300 ns.
  EXPECT_EQ(transmission_time(1500, 10e9), 1200);
  EXPECT_EQ(transmission_time(1500, 40e9), 300);
  EXPECT_EQ(transmission_time(40, 10e9), 32);
}

TEST(EventQueueTest, OrdersByTime) {
  EventQueue queue;
  std::vector<int> order;
  queue.push(30, [&] { order.push_back(3); });
  queue.push(10, [&] { order.push_back(1); });
  queue.push(20, [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoTieBreakAtSameTime) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.push(42, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  const EventId id = queue.push(5, [&] { ran = true; });
  queue.push(6, [] {});
  queue.cancel(id);
  EXPECT_EQ(queue.size(), 1u);
  while (!queue.empty()) queue.pop().second();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelFiredEventIsNoop) {
  EventQueue queue;
  const EventId id = queue.push(1, [] {});
  queue.pop().second();
  queue.cancel(id);  // must not corrupt accounting
  EXPECT_TRUE(queue.empty());
  queue.push(2, [] {});
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueTest, CancelHeadThenNextTime) {
  EventQueue queue;
  const EventId id = queue.push(1, [] {});
  queue.push(9, [] {});
  queue.cancel(id);
  EXPECT_EQ(queue.next_time(), 9);
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  TimeNs seen = -1;
  sim.schedule_in(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndSetsClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(50, [&] { ++fired; });
  sim.schedule_in(150, [&] { ++fired; });
  sim.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100);
  sim.run_until(200);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NestedSchedulingDuringRun) {
  Simulator sim;
  std::vector<TimeNs> times;
  sim.schedule_in(10, [&] {
    times.push_back(sim.now());
    sim.schedule_in(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<TimeNs>{10, 15}));
}

TEST(SimulatorTest, StopAbortsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_in(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.pending());
}

TEST(SimulatorTest, RejectsNegativeDelayAndPastSchedule) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_in(-1, [] {}), std::invalid_argument);
  sim.schedule_in(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, CancelTimer) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_in(10, [&] { ran = true; });
  sim.schedule_in(5, [&] { sim.cancel(id); });
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(7);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(3);
  const auto perm = rng.permutation(100);
  std::vector<bool> seen(100, false);
  for (std::size_t v : perm) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, IndexBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

}  // namespace
}  // namespace numfabric::sim
