// Sharded-engine guard: the conservative parallel engine must be
// byte-identical to the serial one.
//
// Unit half: shard-count resolution, leaf-major plan assignment, the
// passthrough facade, the missing-lookahead guard and run_until clock
// alignment.
//
// Golden half: runs fig4a (`convergence`), one incast sweep and one
// oversub-fabric sweep serial (--shards=1) and sharded (--shards=2/4) and
// asserts the outputs are byte-identical after stripping the rows that
// legitimately differ: per-shard perf counters (shard*_ rows exist only when
// sharded), substrate allocation counters (each shard grows its own event
// queue and packet pool) and wall-clock cells.  Every behavioral byte —
// events fired, packets, bytes, FCTs, rates, queue depths — must match.
// The serial hashes themselves are guarded by golden_determinism_test.cc.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/metrics.h"
#include "app/options.h"
#include "app/run_plan.h"
#include "app/scenario.h"
#include "app/sweep.h"
#include "net/shard_plan.h"
#include "net/topology.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace numfabric {
namespace {

using app::MetricWriter;
using app::Options;
using app::RunContext;
using app::ScenarioRegistry;
using app::SweepRequest;
using app::SweepResult;

// --- unit half -------------------------------------------------------------

TEST(ShardPlanTest, ResolveShardCountClampsToLeaves) {
  EXPECT_EQ(net::resolve_shard_count(1, 8), 1);
  EXPECT_EQ(net::resolve_shard_count(3, 8), 3);
  EXPECT_EQ(net::resolve_shard_count(100, 4), 4);
  // 0 = one shard per leaf, capped at the core count; always in [1, leaves].
  const int zero = net::resolve_shard_count(0, 8);
  EXPECT_GE(zero, 1);
  EXPECT_LE(zero, 8);
  EXPECT_EQ(net::resolve_shard_count(0, 1), 1);
}

TEST(ShardPlanTest, LeafMajorAssignmentAndLookahead) {
  sim::Simulator sim;
  net::Topology topo(sim);
  net::LeafSpineOptions options;
  options.num_leaves = 4;
  options.hosts_per_leaf = 2;
  options.num_spines = 2;
  const net::LeafSpine fabric =
      net::build_leaf_spine(topo, options, net::drop_tail_factory());

  const net::ShardPlan plan = net::build_leaf_shard_plan(fabric, options, 2);
  EXPECT_EQ(plan.shards, 2);
  EXPECT_EQ(plan.lookahead, options.effective_core_delay());

  // Leaves split into contiguous leaf-major blocks: 0,1 -> shard 0;
  // 2,3 -> shard 1.  Hosts follow their leaf; spines go round-robin.
  for (int leaf = 0; leaf < options.num_leaves; ++leaf) {
    const int expected = leaf * 2 / options.num_leaves;
    EXPECT_EQ(plan.shard_of(fabric.leaves[static_cast<std::size_t>(leaf)]),
              expected)
        << "leaf " << leaf;
    for (int h = 0; h < options.hosts_per_leaf; ++h) {
      const std::size_t host =
          static_cast<std::size_t>(leaf * options.hosts_per_leaf + h);
      EXPECT_EQ(plan.shard_of(fabric.hosts[host]), expected)
          << "host " << host;
    }
  }
  for (int s = 0; s < options.num_spines; ++s) {
    EXPECT_EQ(plan.shard_of(fabric.spines[static_cast<std::size_t>(s)]),
              s % 2)
        << "spine " << s;
  }
}

TEST(ShardedSimulatorTest, PassthroughModeMatchesPlainSimulator) {
  // shards=1 must behave exactly like using one Simulator directly: same
  // event order, same clock, no threads, no per-shard counters.
  std::vector<int> plain_order;
  sim::Simulator plain;
  plain.schedule_at(sim::micros(3), [&] { plain_order.push_back(3); });
  plain.schedule_at(sim::micros(1), [&] { plain_order.push_back(1); });
  plain.schedule_at(sim::micros(2), [&] { plain_order.push_back(2); });
  plain.run();

  std::vector<int> engine_order;
  sim::ShardedSimulator engine(1);
  EXPECT_FALSE(engine.sharded());
  engine.schedule_at(sim::micros(3), [&] { engine_order.push_back(3); });
  engine.schedule_at(sim::micros(1), [&] { engine_order.push_back(1); });
  engine.schedule_at(sim::micros(2), [&] { engine_order.push_back(2); });
  engine.run();

  EXPECT_EQ(engine_order, plain_order);
  EXPECT_EQ(engine.now(), plain.now());
  EXPECT_EQ(engine.events_executed(), 3u);
  EXPECT_TRUE(engine.shard_perf().empty());
}

TEST(ShardedSimulatorTest, RunningShardedWithoutLookaheadThrows) {
  sim::ShardedSimulator engine(2);
  engine.schedule_at(sim::micros(1), [] {});
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(ShardedSimulatorTest, RunUntilAlignsEveryClock) {
  sim::ShardedSimulator engine(2);
  engine.set_lookahead(sim::micros(2));
  int fired = 0;
  engine.shard(0).schedule_at(sim::micros(5), [&] { ++fired; });
  engine.shard(1).schedule_at(sim::micros(40), [&] { ++fired; });
  engine.run_until(sim::micros(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), sim::micros(10));
  EXPECT_EQ(engine.shard(0).now(), sim::micros(10));
  EXPECT_EQ(engine.shard(1).now(), sim::micros(10));
  // Resume: the shard-1 event is still pending and fires on the next leg.
  EXPECT_TRUE(engine.pending());
  engine.run_until(sim::micros(50));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), sim::micros(50));
}

// --- golden half -----------------------------------------------------------

// Strips the bytes that legitimately differ between serial and sharded runs:
//  * sweep_runs wall_ms cells (nondeterministic wall time);
//  * perf rows named shard*_ (only emitted when sharded) and allocs_*
//    (per-shard containers grow independently of the serial ones);
//  * events_per_sec / wall_ms / solver_wall_us scalars (wall clock).
// Everything else — all behavioral counters and result tables — is kept.
std::string normalize(const MetricWriter& metrics) {
  std::ostringstream raw;
  metrics.write_csv(raw);
  std::istringstream in(raw.str());
  std::ostringstream cleaned;
  std::string line;
  bool in_sweep_runs = false;
  bool in_perf = false;
  // The perf section is buffered so it can be dropped wholesale when every
  // data row was filtered out (a serial ctx run emits no perf table at all;
  // a sharded one would otherwise leave an empty header behind).
  std::vector<std::string> perf_block;
  bool perf_has_rows = false;
  const auto flush_perf = [&] {
    if (perf_has_rows) {
      for (const std::string& kept : perf_block) cleaned << kept << "\n";
    }
    perf_block.clear();
    perf_has_rows = false;
  };
  while (std::getline(in, line)) {
    if (line.rfind("# table,", 0) == 0) {
      flush_perf();
      in_sweep_runs = line == "# table,sweep_runs";
      in_perf = line == "# table,perf";
      if (in_perf) {
        perf_block.push_back(line);
        continue;
      }
    } else if (line.rfind("# scalar,", 0) == 0) {
      const bool wall_scalar =
          line.rfind("# scalar,wall_ms,", 0) == 0 ||
          line.rfind("# scalar,events_per_sec,", 0) == 0 ||
          line.rfind("# scalar,solver_wall_us,", 0) == 0;
      if (wall_scalar) continue;
    } else if (in_sweep_runs && line.find("wall_ms") == std::string::npos) {
      line = line.substr(0, line.rfind(',') + 1) + "<wall>";
    } else if (in_perf) {
      if (perf_block.size() == 1) {
        perf_block.push_back(line);  // column header row
        continue;
      }
      // The perf table's leading columns may be swept keys; match the
      // counter name anywhere in the row.
      if (line.find("shard") != std::string::npos ||
          line.find("allocs_") != std::string::npos ||
          line.find("solver_wall_us") != std::string::npos) {
        continue;
      }
      perf_block.push_back(line);
      perf_has_rows = true;
      continue;
    }
    cleaned << line << "\n";
  }
  flush_perf();
  return cleaned.str();
}

std::string run_convergence(int shards) {
  app::register_builtin_scenarios();
  const app::Scenario* scenario =
      ScenarioRegistry::global().find("convergence");
  EXPECT_NE(scenario, nullptr);
  Options options;
  MetricWriter metrics;
  RunContext ctx{options,
                 transport::Scheme::kNumFabric,
                 metrics,
                 false,
                 /*solver_threads=*/1,
                 /*control_threads=*/1,
                 shards};
  scenario->run(ctx);
  return normalize(metrics);
}

TEST(ShardedGoldenTest, ConvergenceIsShardCountInvariant) {
  const std::string serial = run_convergence(1);
  const std::string sharded = run_convergence(4);
  EXPECT_EQ(serial, sharded)
      << "fig4a output differs between --shards=1 and --shards=4";
}

std::string run_incast_sweep(int shards) {
  app::register_builtin_scenarios();
  const app::Scenario* scenario = ScenarioRegistry::global().find("incast");
  EXPECT_NE(scenario, nullptr);
  SweepRequest request;
  request.scenario = scenario;
  Options options;
  options.set("hosts_per_leaf", "2");
  options.set("leaves", "2");
  options.set("spines", "1");
  options.set("fanin", "3");
  options.set("flow_kb", "32");
  request.base_options = options;
  request.plan = app::RunPlan::expand({app::parse_sweep_spec("seed=1,2")});
  request.jobs = 1;
  request.shards = shards;
  MetricWriter merged;
  const SweepResult result = run_sweep(request, merged);
  EXPECT_EQ(result.failed, 0) << "golden sweep runs must succeed";
  return normalize(merged);
}

TEST(ShardedGoldenTest, IncastSweepIsShardCountInvariant) {
  const std::string serial = run_incast_sweep(1);
  const std::string sharded = run_incast_sweep(2);  // 2 leaves cap shards
  EXPECT_EQ(serial, sharded)
      << "incast sweep output differs between --shards=1 and --shards=2";
}

std::string run_oversub_sweep(int shards) {
  app::register_builtin_scenarios();
  const app::Scenario* scenario =
      ScenarioRegistry::global().find("oversub-fabric");
  EXPECT_NE(scenario, nullptr);
  SweepRequest request;
  request.scenario = scenario;
  Options options;
  options.set("topology", "2x2x2");
  options.set("shuffle_kb", "20");
  options.set("warmup_ms", "1");
  options.set("measure_ms", "2");
  options.set("horizon_ms", "100");
  request.base_options = options;
  request.plan = app::RunPlan::expand({app::parse_sweep_spec("oversub=1,4")});
  request.jobs = 1;
  request.shards = shards;
  MetricWriter merged;
  const SweepResult result = run_sweep(request, merged);
  EXPECT_EQ(result.failed, 0) << "golden sweep runs must succeed";
  return normalize(merged);
}

TEST(ShardedGoldenTest, OversubSweepIsShardCountInvariant) {
  const std::string serial = run_oversub_sweep(1);
  const std::string sharded = run_oversub_sweep(2);
  EXPECT_EQ(serial, sharded)
      << "oversub-fabric sweep output differs between --shards=1 and "
         "--shards=2";
}

}  // namespace
}  // namespace numfabric
