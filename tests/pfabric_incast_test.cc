// pFabric under synchronized incast: qualitative reproduction of the
// shallow-queue drop behaviour from the pFabric paper (Alizadeh et al.,
// SIGCOMM 2013).  pFabric runs near-line-rate windows into very shallow
// priority queues and relies on drops + aggressive retransmission instead of
// congestion avoidance, so a synchronized fan-in burst must (a) drop packets
// at the receiver's edge port, (b) drop more as the fan-in grows, and (c)
// still complete every flow — goodput recovers because retransmissions
// resend exactly the dropped remainder.
#include <gtest/gtest.h>

#include <map>

#include "exp/traffic_experiment.h"
#include "transport/fabric.h"

namespace numfabric {
namespace {

exp::TrafficResult run_incast(int fanin) {
  exp::TrafficOptions options;
  options.scheme = transport::Scheme::kPFabric;
  options.topology.hosts_per_leaf = 17;
  options.topology.num_leaves = 2;
  options.topology.num_spines = 2;
  options.pattern = exp::TrafficPattern::kIncast;
  options.incast_fanin = fanin;
  options.flow_size_bytes = 64'000;
  options.horizon = sim::seconds(5);
  options.seed = 3;
  return exp::run_traffic_experiment(options);
}

TEST(PFabricIncastTest, ShallowQueuesDropMoreAsFaninGrowsButFlowsComplete) {
  std::map<int, exp::TrafficResult> results;
  for (const int fanin : {4, 16, 32}) {
    results.emplace(fanin, run_incast(fanin));
  }

  // (a) + (b): the synchronized burst overruns pFabric's shallow queues and
  // the overrun grows with the fan-in (4 senders fit comfortably; 32 do not).
  EXPECT_GT(results.at(32).queue_drops, 0u);
  EXPECT_GT(results.at(32).queue_drops, results.at(4).queue_drops);
  EXPECT_GE(results.at(32).queue_drops, results.at(16).queue_drops);

  // (c): goodput collapse is transient — priority-based retransmission
  // finishes every flow well inside the horizon.
  for (const int fanin : {4, 16, 32}) {
    const exp::TrafficResult& result = results.at(fanin);
    EXPECT_EQ(result.flow_count, fanin) << fanin;
    EXPECT_EQ(result.completed, fanin) << fanin;
    EXPECT_EQ(result.incomplete, 0) << fanin;
  }

  // Sanity on ordering, not exact values: a larger fan-in shares one
  // receiver NIC, so the slowest completion degrades monotonically.
  const auto max_fct = [](const exp::TrafficResult& result) {
    double worst = 0;
    for (const double fct : result.fct_us) worst = std::max(worst, fct);
    return worst;
  };
  EXPECT_GT(max_fct(results.at(32)), max_fct(results.at(4)));
}

TEST(PFabricIncastTest, DropCountsAreDeterministicAtFixedSeed) {
  const exp::TrafficResult first = run_incast(16);
  const exp::TrafficResult second = run_incast(16);
  EXPECT_EQ(first.queue_drops, second.queue_drops);
  EXPECT_EQ(first.fct_us, second.fct_us);
}

}  // namespace
}  // namespace numfabric
