// Quickstart: build a dumbbell, run NUMFabric with weighted proportional
// fairness, and watch the allocation follow the weights.
//
//   $ ./build/examples/quickstart
//
// Walks through the full public API surface: Simulator -> Fabric ->
// Topology builders -> FlowSpec (+ utility) -> run -> measurements.
#include <cstdio>

#include "net/routing.h"
#include "net/topology.h"
#include "num/utility.h"
#include "transport/fabric.h"
#include "transport/receiver.h"

using namespace numfabric;

int main() {
  // 1. The simulator clock and the NUMFabric wiring (WFQ queues + xWI
  //    price agents, Table 2 default parameters).
  sim::Simulator sim;
  transport::Fabric fabric(sim, {.scheme = transport::Scheme::kNumFabric});

  // 2. A dumbbell: 2 sender/receiver pairs around one 10 Gbps bottleneck.
  net::Topology topo(sim);
  const net::Dumbbell dumbbell = net::build_dumbbell(
      topo, /*n=*/2, /*edge_bps=*/40e9, /*bottleneck_bps=*/10e9,
      /*delay=*/sim::micros(2), fabric.queue_factory());
  fabric.attach_agents(topo);

  // 3. Two long-running flows with weighted proportional-fair utilities:
  //    U(x) = w log x with weights 1 and 3 -> rates should split 1:3.
  const num::AlphaFairUtility weight1(/*alpha=*/1.0, /*weight=*/1.0);
  const num::AlphaFairUtility weight3(/*alpha=*/1.0, /*weight=*/3.0);
  std::vector<transport::Flow*> flows;
  for (int i = 0; i < 2; ++i) {
    transport::FlowSpec spec;
    spec.src = dumbbell.senders[static_cast<std::size_t>(i)];
    spec.dst = dumbbell.receivers[static_cast<std::size_t>(i)];
    spec.size_bytes = 0;  // long-running
    spec.utility = i == 0 ? &weight1 : &weight3;
    spec.path = net::all_shortest_paths(topo, spec.src, spec.dst).front();
    flows.push_back(fabric.add_flow(std::move(spec)));
  }

  // 4. Run and report the destination-measured rates every millisecond.
  std::printf("time(ms)  flow1(Gbps)  flow2(Gbps)   [expect 2.5 / 7.5]\n");
  for (int ms = 1; ms <= 8; ++ms) {
    sim.run_until(sim::millis(ms));
    std::printf("%7d %12.2f %12.2f\n", ms,
                flows[0]->receiver().rate_bps() / 1e9,
                flows[1]->receiver().rate_bps() / 1e9);
  }
  return 0;
}
