// Example: multipath resource pooling on the Fig. 10 topology.
//
// Flow 1 owns a 5 Gbps link, flow 2 a 3 Gbps link, and both can also use a
// shared 5 Gbps middle link.  With the pooling (aggregate) utility the
// three links behave like one pool; the demo also steps the middle link to
// 17 Gbps mid-run and shows the allocation chasing the new optimum.
#include <cstdio>

#include "net/topology.h"
#include "num/utility.h"
#include "transport/fabric.h"
#include "transport/receiver.h"

using namespace numfabric;

int main() {
  sim::Simulator sim;
  transport::FabricOptions options;
  options.scheme = transport::Scheme::kNumFabric;
  options.numfabric.resource_pooling = true;
  transport::Fabric fabric(sim, options);
  net::Topology topo(sim);
  net::Fig10Topology fig10 =
      net::build_fig10(topo, /*middle_rate_bps=*/5e9, sim::micros(2),
                       fabric.queue_factory());
  fabric.attach_agents(topo);

  // Proportional fairness over each flow's *aggregate* rate: sub-flows of a
  // flow share a group id and split the flow-level weight by throughput.
  const num::AlphaFairUtility aggregate_log_utility(1.0);
  auto egress_to = [&](net::Host* dst) -> net::Link* {
    for (net::Link* link : topo.outgoing(fig10.out)) {
      if (link->dst() == dst) return link;
    }
    return nullptr;
  };
  auto add_subflow = [&](net::Host* src, net::Host* dst, net::Link* core,
                         std::uint64_t group) {
    transport::FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size_bytes = 0;
    spec.utility = &aggregate_log_utility;
    spec.group = group;
    spec.path.links = {topo.outgoing(src).front(), core, egress_to(dst)};
    return fabric.add_flow(std::move(spec));
  };

  std::vector<transport::Flow*> flow1 = {
      add_subflow(fig10.src1, fig10.dst1, fig10.top, 1),
      add_subflow(fig10.src1, fig10.dst1, fig10.middle, 1)};
  std::vector<transport::Flow*> flow2 = {
      add_subflow(fig10.src2, fig10.dst2, fig10.bottom, 2),
      add_subflow(fig10.src2, fig10.dst2, fig10.middle, 2)};

  auto aggregate_gbps = [](const std::vector<transport::Flow*>& subflows) {
    double total = 0;
    for (const transport::Flow* flow : subflows) {
      total += flow->receiver().rate_bps();
    }
    return total / 1e9;
  };

  // Step the middle link 5 -> 17 Gbps at t = 10 ms.
  sim.schedule_at(sim::millis(10), [&] {
    fig10.middle->set_rate_bps(17e9);
    fig10.middle->twin()->set_rate_bps(17e9);
    std::printf("   --- middle link stepped to 17 Gbps ---\n");
  });

  std::printf("Aggregate throughput with pooling (13 Gbps total capacity,\n"
              "then 25 Gbps after the step):\n\n");
  std::printf("time(ms)  flow1(Gbps)  flow2(Gbps)\n");
  for (int ms = 2; ms <= 20; ms += 2) {
    sim.run_until(sim::millis(ms));
    std::printf("%7d %12.2f %12.2f\n", ms, aggregate_gbps(flow1),
                aggregate_gbps(flow2));
  }
  std::printf(
      "\n(Proportional fairness over aggregates equalizes where feasible:\n"
      " pool 13G -> ~6.5 / ~6.5; pool 25G -> ~12.5 / ~12.5.  The pool is\n"
      " fully used in both phases -- no capacity stranded on any link.)\n");
  return 0;
}
