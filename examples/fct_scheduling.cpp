// Example: policy flexibility — the same fabric, two bandwidth allocation
// policies.  A mix of short and long flows runs once under plain
// proportional fairness and once under the FCT-minimizing utility
// (Table 1 row 3); the FCT policy finishes short flows dramatically faster
// by starving the elephants while mice are present.
#include <cstdio>
#include <memory>
#include <vector>

#include "net/routing.h"
#include "net/topology.h"
#include "num/utility.h"
#include "transport/fabric.h"

using namespace numfabric;

namespace {

struct Outcome {
  double short_mean_fct_us = 0;
  double long_mean_fct_ms = 0;
};

Outcome run(bool fct_policy) {
  sim::Simulator sim;
  transport::Fabric fabric(sim, {.scheme = transport::Scheme::kNumFabric});
  net::Topology topo(sim);
  const net::Dumbbell dumbbell = net::build_dumbbell(
      topo, 8, 40e9, 10e9, sim::micros(2), fabric.queue_factory());
  fabric.attach_agents(topo);

  // 4 elephants (20 MB) start at t=0; 4 mice (50 KB) arrive at t = 2 ms.
  std::vector<std::unique_ptr<num::AlphaFairUtility>> utilities;
  std::vector<transport::Flow*> shorts, longs;
  for (int i = 0; i < 8; ++i) {
    const bool is_short = i >= 4;
    transport::FlowSpec spec;
    spec.src = dumbbell.senders[static_cast<std::size_t>(i)];
    spec.dst = dumbbell.receivers[static_cast<std::size_t>(i)];
    spec.size_bytes = is_short ? 50'000 : 20'000'000;
    spec.start_time = is_short ? sim::millis(2) : 0;
    if (fct_policy) {
      utilities.push_back(
          num::make_fct_utility(static_cast<double>(spec.size_bytes)));
    } else {
      utilities.push_back(std::make_unique<num::AlphaFairUtility>(1.0));
    }
    spec.utility = utilities.back().get();
    spec.path = net::all_shortest_paths(topo, spec.src, spec.dst).front();
    (is_short ? shorts : longs).push_back(fabric.add_flow(std::move(spec)));
  }

  sim.run_until(sim::millis(200));

  Outcome outcome;
  for (const transport::Flow* flow : shorts) {
    outcome.short_mean_fct_us += flow->completed() ? sim::to_micros(flow->fct()) : 1e9;
  }
  outcome.short_mean_fct_us /= static_cast<double>(shorts.size());
  for (const transport::Flow* flow : longs) {
    outcome.long_mean_fct_ms += flow->completed() ? sim::to_millis(flow->fct()) : 1e9;
  }
  outcome.long_mean_fct_ms /= static_cast<double>(longs.size());
  return outcome;
}

}  // namespace

int main() {
  std::printf("Policy flexibility demo: 4x 20 MB elephants + 4x 50 KB mice\n");
  std::printf("sharing one 10 Gbps bottleneck.\n\n");
  const Outcome fair = run(/*fct_policy=*/false);
  const Outcome fct = run(/*fct_policy=*/true);
  std::printf("%-26s %18s %18s\n", "policy", "mice mean FCT", "elephants mean FCT");
  std::printf("%-26s %15.0f us %15.1f ms\n", "proportional fairness",
              fair.short_mean_fct_us, fair.long_mean_fct_ms);
  std::printf("%-26s %15.0f us %15.1f ms\n", "FCT-min (1/size weights)",
              fct.short_mean_fct_us, fct.long_mean_fct_ms);
  std::printf("\nSwapping one utility function changed the policy — no change\n"
              "to switches or transport code (the paper's §2 argument).\n");
  return 0;
}
