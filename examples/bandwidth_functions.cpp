// Example: expressing a BwE-style sharing policy with bandwidth functions.
//
// An operator gives a production flow strict priority for its first 6 Gbps,
// lets a batch flow in afterwards, then caps the batch flow at 4 Gbps.  The
// policy is one piecewise-linear function per flow; NUMFabric realizes it at
// every capacity.
#include <cstdio>

#include "net/routing.h"
#include "net/topology.h"
#include "num/bandwidth_function.h"
#include "num/bwe_waterfill.h"
#include "transport/fabric.h"
#include "transport/receiver.h"

using namespace numfabric;

int main() {
  // Bandwidth functions in Mbps (the num/ module's rate unit):
  //  production: 0->6G over f in [0,1], then slope 2G/unit (keeps growing).
  //  batch:      nothing until f=1, then 0->4G over f in [1,2], capped.
  const num::BandwidthFunction production({{0, 0}, {1, 6000}, {3, 10'000}});
  const num::BandwidthFunction batch =
      num::BandwidthFunction({{0, 0}, {1, 0}, {2, 4000}}).strictified(1.0).capped(
          1.0);
  const num::BandwidthFunctionUtility production_utility(production, 5.0);
  const num::BandwidthFunctionUtility batch_utility(batch, 5.0);

  std::printf("capacity  production(meas/expect)  batch(meas/expect)  [Gbps]\n");
  for (double capacity_gbps : {4.0, 8.0, 12.0}) {
    sim::Simulator sim;
    transport::Fabric fabric(sim, {.scheme = transport::Scheme::kNumFabric});
    net::Topology topo(sim);
    const net::Dumbbell dumbbell =
        net::build_dumbbell(topo, 2, 100e9, capacity_gbps * 1e9, sim::micros(2),
                            fabric.queue_factory());
    fabric.attach_agents(topo);

    std::vector<transport::Flow*> flows;
    for (int i = 0; i < 2; ++i) {
      transport::FlowSpec spec;
      spec.src = dumbbell.senders[static_cast<std::size_t>(i)];
      spec.dst = dumbbell.receivers[static_cast<std::size_t>(i)];
      spec.size_bytes = 0;
      spec.utility = i == 0 ? static_cast<const num::UtilityFunction*>(
                                  &production_utility)
                            : &batch_utility;
      spec.path = net::all_shortest_paths(topo, spec.src, spec.dst).front();
      flows.push_back(fabric.add_flow(std::move(spec)));
    }

    std::uint64_t start0 = 0, start1 = 0;
    sim.schedule_at(sim::millis(8), [&] {
      start0 = flows[0]->receiver().total_bytes();
      start1 = flows[1]->receiver().total_bytes();
    });
    sim.run_until(sim::millis(16));
    const double window_seconds = sim::to_seconds(sim::millis(8));
    const double rate0 =
        static_cast<double>(flows[0]->receiver().total_bytes() - start0) * 8 /
        window_seconds / 1e9;
    const double rate1 =
        static_cast<double>(flows[1]->receiver().total_bytes() - start1) * 8 /
        window_seconds / 1e9;

    num::BweProblem reference;
    reference.functions = {&production, &batch};
    reference.flow_links = {{0}, {0}};
    reference.capacities = {capacity_gbps * 1000.0};
    const num::BweResult expected = num::bwe_waterfill(reference);

    std::printf("%5.0f G %12.2f / %-8.2f %12.2f / %-8.2f\n", capacity_gbps, rate0,
                expected.rates[0] / 1000, rate1, expected.rates[1] / 1000);
  }
  std::printf("\n(The production flow always gets its guaranteed slice first;\n"
              " the batch flow fills in and never exceeds its 4 Gbps cap.)\n");
  return 0;
}
